package replica

import (
	"context"
	"sync"

	"pdht/internal/keyspace"
)

// Set is the ordered replica set of one key over live peers: the
// routing-designated primary first, then the backups in the keyspace
// ranking (keyspace.RankClosest over hashed addresses). Reads probe in this
// order and fail over on a miss, refusal or timeout; writes fan out to all
// of it. Because the order is a pure function of (key, member addresses),
// every peer that agrees on the membership list walks the replicas the same
// way — duplicate probes cost nothing extra and no coordination is needed.
type Set struct {
	// Primary is the peer routing designated as responsible for the key —
	// the first probe of a read and the target of read repair. Empty when
	// routing could not resolve one.
	Primary string
	// Backups are the remaining members of the set, closest first in the
	// keyspace ranking.
	Backups []string
}

// NewSet orders a key's replica group into a Set: primary first (promoted
// from the group's ranking when the caller has none), then the other group
// members ranked by clockwise keyspace distance from the key to their
// hashed address. Duplicates in group are dropped.
func NewSet(key keyspace.Key, primary string, group []string) Set {
	s := Set{Primary: primary}
	if len(group) == 0 {
		return s
	}
	seen := make(map[string]bool, len(group)+1)
	seen[primary] = true
	rest := make([]string, 0, len(group))
	points := make([]keyspace.Key, 0, len(group))
	for _, addr := range group {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		rest = append(rest, addr)
		points = append(points, keyspace.HashString(addr))
	}
	s.Backups = make([]string, len(rest))
	for i, idx := range keyspace.RankClosest(key, points) {
		s.Backups[i] = rest[idx]
	}
	if s.Primary == "" && len(s.Backups) > 0 {
		// No routing-designated primary (a client that only knows the
		// group): the ranking's first successor takes the role.
		s.Primary, s.Backups = s.Backups[0], s.Backups[1:]
	}
	return s
}

// All returns the probe/write order: primary first, then the ranked
// backups. The slice is freshly allocated.
func (s Set) All() []string {
	if s.Primary == "" {
		return append([]string(nil), s.Backups...)
	}
	out := make([]string, 0, 1+len(s.Backups))
	out = append(out, s.Primary)
	return append(out, s.Backups...)
}

// Size returns the number of members in the set.
func (s Set) Size() int {
	n := len(s.Backups)
	if s.Primary != "" {
		n++
	}
	return n
}

// Contains reports whether addr is a member of the set.
func (s Set) Contains(addr string) bool {
	if addr == "" {
		return false
	}
	if addr == s.Primary {
		return true
	}
	for _, b := range s.Backups {
		if b == addr {
			return true
		}
	}
	return false
}

// Fanout runs one write leg per address concurrently — the insert and
// reset-on-hit refresh fan-out of the live replica scheme. Each leg
// receives the caller's context (callers derive per-leg deadlines from it,
// e.g. capping at their RPC timeout) and reports success; Fanout returns
// how many legs succeeded. Once ctx is done, remaining legs are not
// spawned — a cancelled request stops paying for replication it no longer
// needs — but legs already in flight run to their own deadline.
func Fanout(ctx context.Context, addrs []string, leg func(ctx context.Context, addr string) bool) int {
	if len(addrs) == 1 {
		// Single-member set (r=1, or failover probing off): no
		// concurrency to buy, skip the goroutine.
		if ctx.Err() != nil {
			return 0
		}
		if leg(ctx, addrs[0]) {
			return 1
		}
		return 0
	}
	var ok int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range addrs {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			if leg(ctx, addr) {
				mu.Lock()
				ok++
				mu.Unlock()
			}
		}(addr)
	}
	wg.Wait()
	return ok
}
