package replica

import (
	"math/rand/v2"

	"pdht/internal/keyspace"
	"pdht/internal/netsim"
	"pdht/internal/stats"
)

// Versioned tracks per-member versions of the keys a replica group holds,
// implementing the hybrid push/pull scheme of [DaHa03]: updates are pushed
// by gossip to the online members; members that were offline pull what they
// missed when they rejoin.
type Versioned struct {
	net    *netsim.Network
	subnet *Subnet
	latest map[keyspace.Key]uint64
	have   map[netsim.PeerID]map[keyspace.Key]uint64
}

// NewVersioned returns a consistency tracker over a subnet.
func NewVersioned(net *netsim.Network, subnet *Subnet) *Versioned {
	return &Versioned{
		net:    net,
		subnet: subnet,
		latest: make(map[keyspace.Key]uint64),
		have:   make(map[netsim.PeerID]map[keyspace.Key]uint64),
	}
}

// Latest returns the newest version of key, 0 if never written.
func (v *Versioned) Latest(key keyspace.Key) uint64 { return v.latest[key] }

// VersionAt returns the version of key held at member p, 0 if none.
func (v *Versioned) VersionAt(p netsim.PeerID, key keyspace.Key) uint64 {
	return v.have[p][key]
}

// Update applies a new version of key at the given member (the responsible
// peer the index routed the writer to) and pushes it through the subnet.
// It returns the gossip cost. The caller pays the index search separately —
// eq. 9 is cUpd = (cSIndx + repl·dup2)·fUpd, and this is the repl·dup2
// part, recorded as stats.MsgUpdate.
func (v *Versioned) Update(at netsim.PeerID, key keyspace.Key) FloodStats {
	v.latest[key]++
	version := v.latest[key]
	fs := v.subnet.Flood(at, nil, stats.MsgUpdate)
	if fs.Reached == 0 {
		return fs
	}
	// Everyone the rumor reached now stores the new version.
	for _, p := range v.subnet.Members() {
		if v.net.Online(p) {
			v.set(p, key, version)
		}
	}
	return fs
}

// set records that p holds version of key.
func (v *Versioned) set(p netsim.PeerID, key keyspace.Key, version uint64) {
	m := v.have[p]
	if m == nil {
		m = make(map[keyspace.Key]uint64)
		v.have[p] = m
	}
	if version > m[key] {
		m[key] = version
	}
}

// PullSync brings a rejoining member up to date: it contacts one random
// online member (one request message, class stats.MsgUpdate; the response
// piggybacks the missed versions, per the paper's free-repair convention)
// and adopts every newer version. Returns the number of keys refreshed, or
// ok=false if no online member could serve the pull.
func (v *Versioned) PullSync(p netsim.PeerID, rng *rand.Rand) (refreshed int, ok bool) {
	if !v.subnet.Contains(p) {
		return 0, false
	}
	src, found := v.subnet.RandomOnlineMember(rng)
	if !found || src == p {
		// Only ourselves online: nothing to pull from.
		if !found {
			return 0, false
		}
	}
	v.net.Send(stats.MsgUpdate, 1)
	for key, version := range v.latest {
		if v.have[p][key] < version {
			v.set(p, key, version)
			refreshed++
		}
	}
	return refreshed, true
}

// StaleMembers returns how many members hold an outdated or missing version
// of key.
func (v *Versioned) StaleMembers(key keyspace.Key) int {
	latest := v.latest[key]
	if latest == 0 {
		return 0
	}
	stale := 0
	for _, p := range v.subnet.Members() {
		if v.have[p][key] < latest {
			stale++
		}
	}
	return stale
}
