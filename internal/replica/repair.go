package replica

import (
	"slices"

	"pdht/internal/keyspace"
)

// Replica repair: when a confirmed membership change moves or shrinks a
// key's replica set, the surviving copies must reach the set's new members
// or the index silently loses redundancy — first the availability margin,
// then (when the last holder churns out) the entry itself, and the next
// query pays a broadcast the paper's model doesn't predict. DistHash-style
// active re-replication is the fix: walk the local cache, recompute
// placement under the new view, and push what the new set is missing.
//
// Invariants:
//
//   - Exactly-once planning, at-least-once effect: for each entry, the
//     FIRST member of the old replica set that survived into the new view
//     is the designated pusher. Every survivor evaluates the same
//     deterministic rule against the same (old, new) view pair, so in the
//     converged case one node pushes and the rest stay silent; while views
//     are still settling, duplicate pushes are possible and harmless
//     (inserts are idempotent, latest-expiry wins).
//   - Orphan rescue: when NO member of the old set survived, any node still
//     holding a copy — typically from an even older view, kept by the
//     no-deletion rule below — pushes it to the entire new set. Without
//     this the "whole set died with the data" case is unrecoverable even
//     while a live copy exists.
//   - TTL preservation: entries travel with their REMAINING lifetime
//     (expires − now, in rounds), not a fresh keyTtl. A key that was about
//     to lapse still lapses on schedule at its new owner — the expiry
//     semantics of §5.1 are membership-change invariant.
//   - No deletion: the holder keeps its copy even when it left the set.
//     It stops being probed under the new view, so it simply expires on
//     schedule; dropping it early would lose data if the view flaps back.

// View is the slice of a membership view the repair planner needs: replica
// placement and membership tests. internal/node's view satisfies it.
type View interface {
	// Replicas returns the addresses of key's replica group under this
	// view, placement order preserved.
	Replicas(k keyspace.Key) []string
	// Contains reports whether addr is a member of this view.
	Contains(addr string) bool
}

// Entry is one index entry a holder offers to the repair pass.
type Entry struct {
	Key   keyspace.Key
	Value uint64
	// TTL is the remaining lifetime in rounds; entries with TTL < 1 are
	// skipped (lapsed between snapshot and planning).
	TTL int
}

// Push is one planned transfer: key→value to a member of the new replica
// set, with the entry's remaining TTL.
type Push struct {
	To    string
	Key   keyspace.Key
	Value uint64
	TTL   int
}

// PlanRepair computes the pushes self owes for the view transition
// old→next, given the entries self holds. Pure function of its inputs —
// every surviving member of an entry's old set computes the same plan and
// the designated-pusher rule leaves at most one of them responsible; the
// orphan-rescue rule adds a pusher only when that leaves nobody.
func PlanRepair(old, next View, self string, entries []Entry) []Push {
	var plan []Push
	for _, e := range entries {
		if e.TTL < 1 {
			continue
		}
		oldSet := old.Replicas(e.Key)
		pusher := ""
		for _, a := range oldSet {
			if next.Contains(a) {
				pusher = a
				break
			}
		}
		if pusher == "" {
			// The whole old set is gone, but self still holds a copy (the
			// no-deletion rule keeps entries through set changes): rescue
			// it into the current set.
			for _, a := range next.Replicas(e.Key) {
				if a != self {
					plan = append(plan, Push{To: a, Key: e.Key, Value: e.Value, TTL: e.TTL})
				}
			}
			continue
		}
		if pusher != self {
			// Another survivor owns the push, or self holds a copy from an
			// even older view — the current set members handle those keys.
			continue
		}
		for _, a := range next.Replicas(e.Key) {
			if a == self || slices.Contains(oldSet, a) {
				continue
			}
			plan = append(plan, Push{To: a, Key: e.Key, Value: e.Value, TTL: e.TTL})
		}
	}
	return plan
}
