// Package replica owns the replica-set machinery of the partial DHT: how
// many copies of an index entry exist, where they live, in what order reads
// fail over between them, and how the set is repaired when churn punches
// holes in it.
//
// It has two halves, one per substrate:
//
// The live half places and maintains replica sets over real peers. Set is
// the ordered replica set of one key — the routing-designated primary
// first, then the backups in the deterministic keyspace ranking
// (keyspace.RankClosest over hashed peer addresses), so every node that
// agrees on the membership list agrees on the failover order with no extra
// protocol. Fanout runs write legs (insert, reset-on-hit refresh) against
// the whole set concurrently, each leg bounded by the caller's context.
// PlanRepair extends the handoff planner of internal/node: on a view
// change, the designated pusher re-replicates under-replicated entries to
// the members of the new set with their remaining TTL, and a node holding
// an orphaned copy — its entire former replica set gone — pushes it back
// into the current set rather than letting the index lose the key.
//
// The simulation half models the paper's replica subnetwork (§3.3.2,
// [DaHa03]) over internal/netsim: Subnet is the unstructured gossip graph
// among one replica group's members, carrying the update floods of eq. 9
// and the query floods of eq. 16, and Versioned tracks per-member key
// versions under the hybrid push/pull update scheme.
package replica
