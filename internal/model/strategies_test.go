package model

import (
	"math"
	"testing"

	"pdht/internal/zipf"
)

func TestIndexAllCostHandValue(t *testing.T) {
	// eq. 11 at Table 1 with fQry = 1/30:
	// 40000·cIndKey + (20000/30)·cSIndx
	p := DefaultScenario()
	nap := NumActivePeers(p, 40000)
	want := 40000*CIndKey(p, nap, 40000) + (20000.0/30.0)*CSIndx(nap)
	approx(t, "IndexAllCost", IndexAllCost(p), want, 1e-12)
	// ≈ 25.2k msg/s, dominated by maintenance.
	approx(t, "IndexAllCost(numeric)", IndexAllCost(p), 25219, 0.01)
}

func TestNoIndexCostHandValue(t *testing.T) {
	// eq. 12: (20000/30)·720 = 480,000 msg/s.
	p := DefaultScenario()
	approx(t, "NoIndexCost", NoIndexCost(p), 480000, 1e-9)
}

func TestIndexAllAlmostFlatInFQry(t *testing.T) {
	// Fig. 1: the indexAll curve is nearly flat — maintenance dominates.
	p := DefaultScenario()
	busy := IndexAllCost(p.WithFQry(1.0 / 30.0))
	calm := IndexAllCost(p.WithFQry(1.0 / 7200.0))
	if busy < calm {
		t.Errorf("indexAll should not decrease with load: %v vs %v", busy, calm)
	}
	if (busy-calm)/busy > 0.25 {
		t.Errorf("indexAll varies too much to be 'flat': busy=%v calm=%v", busy, calm)
	}
}

func TestPartialBeatsBothBaselinesOnGrid(t *testing.T) {
	// Fig. 1/2: "Ideal partial indexing is considerably cheaper for all
	// query frequencies."
	base := DefaultScenario()
	dist := zipf.MustNew(base.Alpha, base.Keys)
	for _, f := range FrequencyGrid() {
		c, err := CostsAt(base.WithFQry(f), dist)
		if err != nil {
			t.Fatal(err)
		}
		if c.Partial >= c.IndexAll {
			t.Errorf("fQry=%s: partial %v not below indexAll %v",
				FormatFrequency(f), c.Partial, c.IndexAll)
		}
		if c.Partial >= c.NoIndex {
			t.Errorf("fQry=%s: partial %v not below noIndex %v",
				FormatFrequency(f), c.Partial, c.NoIndex)
		}
	}
}

func TestPartialCostDegenerateCases(t *testing.T) {
	base := DefaultScenario()
	// Empty index: partial degenerates to noIndex.
	sol, err := Solve(base.WithFQry(1e-12), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank != 0 {
		t.Fatalf("expected empty index, got %d", sol.MaxRank)
	}
	approx(t, "partial(empty index)", PartialCost(sol), NoIndexCost(sol.Params), 1e-9)

	// Full index: partial degenerates to indexAll (pIndxd = 1).
	p := base
	p.Env = 0
	p.FUpd = 0
	sol, err = Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank != p.Keys {
		t.Fatalf("expected full index, got %d", sol.MaxRank)
	}
	approx(t, "partial(full index)", PartialCost(sol), IndexAllCost(p), 1e-9)
}

func TestSavings(t *testing.T) {
	if got := Savings(30, 100); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Savings(30,100) = %v, want 0.7", got)
	}
	if got := Savings(200, 100); math.Abs(got+1) > 1e-12 {
		t.Errorf("Savings(200,100) = %v, want -1", got)
	}
	if got := Savings(5, 0); got != 0 {
		t.Errorf("Savings with zero baseline = %v, want 0", got)
	}
}

func TestCostsAtPropagatesErrors(t *testing.T) {
	p := DefaultScenario()
	p.NumPeers = 0
	if _, err := CostsAt(p, nil); err == nil {
		t.Error("CostsAt accepted invalid params")
	}
}

// Crossover property (Fig. 1): at high query rates indexAll beats noIndex;
// at low rates noIndex beats indexAll. The crossover falls inside the
// paper's plotted range.
func TestIndexAllNoIndexCrossover(t *testing.T) {
	p := DefaultScenario()
	busyAll, busyNone := IndexAllCost(p.WithFQry(1.0/30)), NoIndexCost(p.WithFQry(1.0/30))
	if busyAll >= busyNone {
		t.Errorf("at 1/30 indexAll (%v) should beat noIndex (%v)", busyAll, busyNone)
	}
	calmAll, calmNone := IndexAllCost(p.WithFQry(1.0/7200)), NoIndexCost(p.WithFQry(1.0/7200))
	if calmNone >= calmAll {
		t.Errorf("at 1/7200 noIndex (%v) should beat indexAll (%v)", calmNone, calmAll)
	}
}
