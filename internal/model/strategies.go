package model

import (
	"fmt"

	"pdht/internal/zipf"
)

// This file implements the three total-cost strategies of Section 4:
// indexing everything (eq. 11), broadcasting everything (eq. 12) and ideal
// partial indexing (eq. 13). Costs are total messages per second across the
// whole network.

// IndexAllCost is eq. 11: the cost of the full index per second
// (keys · cIndKey, with every key indexed) plus the cost of answering all
// fQry·numPeers queries from the index.
func IndexAllCost(p Params) float64 {
	keys := float64(p.Keys)
	nap := NumActivePeers(p, keys)
	return keys*CIndKey(p, nap, keys) + p.TotalQueries()*CSIndx(nap)
}

// NoIndexCost is eq. 12: every query is answered by a search in the
// unstructured network.
func NoIndexCost(p Params) float64 {
	return p.TotalQueries() * CSUnstr(p)
}

// PartialCost is eq. 13: maintain the maxRank keys worth indexing; answer
// the pIndxd fraction of queries from the index and broadcast the rest.
// It is evaluated on a Solution so the cost components are the ones the
// fixed point settled on.
func PartialCost(sol Solution) float64 {
	q := sol.Params.TotalQueries()
	return float64(sol.MaxRank)*sol.CIndKey +
		sol.PIndxd*q*sol.CSIndx +
		(1-sol.PIndxd)*q*sol.CSUnstr
}

// Savings returns 1 − cost/baseline: the fraction of messages saved
// relative to a baseline strategy (the y-axis of Figures 2 and 4). A
// negative value means the strategy costs more than the baseline. A zero
// baseline yields zero savings by definition (nothing to save).
func Savings(cost, baseline float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return 1 - cost/baseline
}

// StrategyCosts bundles the three Section-4 strategies at one operating
// point.
type StrategyCosts struct {
	Params   Params
	Solution Solution
	IndexAll float64 // eq. 11
	NoIndex  float64 // eq. 12
	Partial  float64 // eq. 13
}

// CostsAt solves the model at p and evaluates all three strategies.
func CostsAt(p Params, dist *zipf.Distribution) (StrategyCosts, error) {
	sol, err := Solve(p, dist)
	if err != nil {
		return StrategyCosts{}, fmt.Errorf("model: solving partial index: %w", err)
	}
	return StrategyCosts{
		Params:   p,
		Solution: sol,
		IndexAll: IndexAllCost(p),
		NoIndex:  NoIndexCost(p),
		Partial:  PartialCost(sol),
	}, nil
}
