package model

import (
	"math"
	"testing"
)

func TestSweepGridShapes(t *testing.T) {
	pts, err := Sweep(DefaultScenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("sweep returned %d points, want 8", len(pts))
	}

	for i, p := range pts {
		// Fig. 1: partial below both baselines everywhere.
		if p.Partial >= p.IndexAll || p.Partial >= p.NoIndex {
			t.Errorf("point %d: partial %v not below indexAll %v / noIndex %v",
				i, p.Partial, p.IndexAll, p.NoIndex)
		}
		// Fig. 2: savings strictly positive.
		if p.SavingsVsIndexAll <= 0 || p.SavingsVsNoIndex <= 0 {
			t.Errorf("point %d: non-positive ideal savings %v / %v",
				i, p.SavingsVsIndexAll, p.SavingsVsNoIndex)
		}
		// Fig. 3: fractions in range.
		if p.IndexFraction < 0 || p.IndexFraction > 1 {
			t.Errorf("point %d: index fraction %v out of [0,1]", i, p.IndexFraction)
		}
		if p.PIndxd < 0 || p.PIndxd > 1 {
			t.Errorf("point %d: pIndxd %v out of [0,1]", i, p.PIndxd)
		}
		// Fig. 4: the selection algorithm always beats broadcasting
		// on this grid.
		if p.TTLSavingsVsNoIndex <= 0 {
			t.Errorf("point %d: TTL savings vs noIndex %v not positive",
				i, p.TTLSavingsVsNoIndex)
		}
	}

	for i := 1; i < len(pts); i++ {
		// noIndex falls linearly with query rate.
		if pts[i].NoIndex >= pts[i-1].NoIndex {
			t.Errorf("noIndex not decreasing at point %d", i)
		}
		// Fig. 3: the index shrinks as queries get rarer.
		if pts[i].IndexFraction > pts[i-1].IndexFraction {
			t.Errorf("index fraction not shrinking at point %d", i)
		}
		// Fig. 2: savings vs indexAll grow as queries get rarer.
		if pts[i].SavingsVsIndexAll < pts[i-1].SavingsVsIndexAll {
			t.Errorf("savings vs indexAll not growing at point %d", i)
		}
		// Fig. 2: savings vs noIndex shrink as queries get rarer.
		if pts[i].SavingsVsNoIndex > pts[i-1].SavingsVsNoIndex {
			t.Errorf("savings vs noIndex not shrinking at point %d", i)
		}
	}

	// Fig. 3 headline: "even a small index can answer a high percentage
	// of queries" — at the calmest point ~1% of keys answer >80%.
	last := pts[len(pts)-1]
	if last.IndexFraction > 0.02 {
		t.Errorf("calm index fraction = %v, want ≤ 0.02", last.IndexFraction)
	}
	if last.PIndxd < 0.8 {
		t.Errorf("calm pIndxd = %v, want ≥ 0.8", last.PIndxd)
	}

	// Fig. 4 caveat: at the busiest frequencies the selection algorithm
	// is costlier than indexAll ("except for very high query
	// frequencies"), but wins at average ones.
	if pts[0].TTLSavingsVsIndexAll >= 0 {
		t.Errorf("at 1/30 TTL should lose to indexAll, savings = %v",
			pts[0].TTLSavingsVsIndexAll)
	}
	for _, p := range pts[3:] { // 1/300 and calmer
		if p.TTLSavingsVsIndexAll <= 0 {
			t.Errorf("fQry=%s: TTL should beat indexAll, savings = %v",
				FormatFrequency(p.FQry), p.TTLSavingsVsIndexAll)
		}
	}
}

func TestSweepCustomFrequencies(t *testing.T) {
	pts, err := Sweep(DefaultScenario(), []float64{1.0 / 100.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points, want 1", len(pts))
	}
	if math.Abs(pts[0].FQry-0.01) > 1e-15 {
		t.Errorf("FQry = %v", pts[0].FQry)
	}
}

func TestSweepInvalidParams(t *testing.T) {
	p := DefaultScenario()
	p.Keys = -1
	if _, err := Sweep(p, nil); err == nil {
		t.Error("Sweep accepted invalid params")
	}
}

func TestTTLSensitivityPaperClaim(t *testing.T) {
	// §5.1.1: "an estimation error of ±50% of the ideal keyTtl decreases
	// the savings only slightly." We quantify "slightly" as ≤ 0.1
	// absolute savings (measured: ≤ 0.085 at the calmest point).
	pts, err := TTLSensitivity(DefaultScenario(), nil, []float64{-0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("got %d sensitivity points, want 16", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.DeltaSavings) > 0.1 {
			t.Errorf("fQry=%s err=%v: savings shifted by %v — not 'slightly'",
				FormatFrequency(p.FQry), p.Error, p.DeltaSavings)
		}
	}
}

func TestTTLSensitivityDirection(t *testing.T) {
	// §5.1.1: "A too small value results in fewer savings at high query
	// frequencies, a too big value at lower frequencies."
	pts, err := TTLSensitivity(DefaultScenario(),
		[]float64{1.0 / 30.0, 1.0 / 7200.0}, []float64{-0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[[2]float64]TTLSensitivityPoint)
	for _, p := range pts {
		byKey[[2]float64{p.FQry, p.Error}] = p
	}
	busyLow := byKey[[2]float64{1.0 / 30.0, -0.5}]
	if busyLow.DeltaSavings <= 0 {
		t.Errorf("too-small TTL at 1/30 should cost savings, delta = %v", busyLow.DeltaSavings)
	}
	calmHigh := byKey[[2]float64{1.0 / 7200.0, 0.5}]
	if calmHigh.DeltaSavings <= 0 {
		t.Errorf("too-big TTL at 1/7200 should cost savings, delta = %v", calmHigh.DeltaSavings)
	}
}

func TestTTLSensitivityDefaults(t *testing.T) {
	pts, err := TTLSensitivity(DefaultScenario(), []float64{1.0 / 600.0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 { // default errors −0.5, 0, +0.5
		t.Fatalf("got %d points, want 3", len(pts))
	}
	for _, p := range pts {
		if p.Error == 0 && math.Abs(p.DeltaSavings) > 1e-12 {
			t.Errorf("zero error must have zero delta, got %v", p.DeltaSavings)
		}
	}
}

func TestTTLSensitivityInvalidParams(t *testing.T) {
	p := DefaultScenario()
	p.Repl = 0
	if _, err := TTLSensitivity(p, nil, nil); err == nil {
		t.Error("TTLSensitivity accepted invalid params")
	}
}
