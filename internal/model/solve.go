package model

import (
	"fmt"
	"math"
	"sort"

	"pdht/internal/zipf"
)

// Solution is the resolved ideal-partial-indexing model for one parameter
// set: which keys are worth indexing (Section 2) and what every cost
// component evaluates to at that index size (Section 3).
type Solution struct {
	Params Params
	// FMin is eq. 2: the minimum per-round query frequency a key must
	// have to be worth indexing.
	FMin float64
	// MaxRank is the number of keys worth indexing: the highest Zipf rank
	// whose probability of being queried at least once per round (eq. 4)
	// is ≥ FMin. Zero means nothing is worth indexing.
	MaxRank int
	// PIndxd is eq. 5: the probability that a random query can be
	// answered from the index.
	PIndxd float64
	// NumActivePeers is the number of peers maintaining the partial DHT.
	NumActivePeers float64
	// Cost components at the solved index size.
	CSUnstr, CSIndx, CRtn, CUpd, CIndKey float64
	// Iterations is how many fixed-point rounds Solve needed.
	Iterations int
}

// Solve resolves the circular dependency in Section 2: fMin depends on
// cIndKey (eq. 2), cIndKey depends on numActivePeers and therefore on how
// many keys are indexed (eq. 8), and the number of indexed keys depends on
// fMin (eq. 4). The paper evaluates the model without spelling out the
// order; we iterate to the fixed point, starting from a full index. The
// iteration converges quickly because cIndKey depends on the index size
// only through log₂(numActivePeers); a two-cycle, if one appears, is
// resolved by averaging (the amplitude is a handful of ranks).
//
// dist must be the Zipf distribution with p.Alpha over p.Keys ranks; pass
// nil to have Solve construct it (constructing once and reusing across a
// sweep is cheaper).
func Solve(p Params, dist *zipf.Distribution) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if dist == nil {
		var err error
		dist, err = zipf.New(p.Alpha, p.Keys)
		if err != nil {
			return Solution{}, err
		}
	}
	if dist.Keys() != p.Keys {
		return Solution{}, fmt.Errorf("model: distribution has %d keys, params have %d", dist.Keys(), p.Keys)
	}

	sol := Solution{Params: p, CSUnstr: CSUnstr(p)}
	maxRank := p.Keys
	prev, prevPrev := -1, -1
	const maxIter = 100
	for iter := 1; iter <= maxIter; iter++ {
		sol.Iterations = iter
		next := nextMaxRank(p, dist, float64(maxRank), &sol)
		if next == maxRank || next == maxRank-1 || next == maxRank+1 {
			// A ±1-rank oscillation is noise at the scale of the
			// model (the cost of one key); accept it as converged.
			maxRank = next
			break
		}
		if next == prevPrev && prev == maxRank {
			// Two-cycle: settle between the two points and stop.
			next = (next + maxRank) / 2
			nextMaxRank(p, dist, float64(next), &sol)
			maxRank = next
			break
		}
		prevPrev, prev = prev, maxRank
		maxRank = next
	}
	sol.MaxRank = maxRank
	sol.PIndxd = dist.HeadMass(maxRank)
	return sol, nil
}

// nextMaxRank evaluates the cost components at the given index size, derives
// fMin, and returns the index size that fMin implies. It records the
// evaluated components in sol.
//
// An empty index is evaluated at one key — the marginal cost of indexing the
// first key — because eq. 8 amortizes maintenance over the indexed keys and
// is undefined at zero. Without this the iteration oscillates: an empty
// index would look free (cRtn = 0), pulling thousands of keys back in.
func nextMaxRank(p Params, dist *zipf.Distribution, indexedKeys float64, sol *Solution) int {
	if indexedKeys < 1 {
		indexedKeys = 1
	}
	nap := NumActivePeers(p, indexedKeys)
	cSIndx := CSIndx(nap)
	cRtn := CRtn(p, nap, indexedKeys)
	cUpd := CUpd(p, cSIndx)
	cIndKey := cRtn + cUpd
	// Top-k serving load: the peers holding the index are the peers
	// answering OpTopK probes, so each indexed key carries its amortized
	// share of the cluster's numPeers·TopKRound·TopKProbe msgs/round.
	// Charging it into cIndKey raises fMin — under heavy top-k traffic
	// fewer marginal keys are worth indexing. Zero rates leave the
	// paper-exact model untouched.
	cIndKey += float64(p.NumPeers) * p.TopKRound * p.TopKProbe / indexedKeys

	sol.NumActivePeers = nap
	sol.CSIndx = cSIndx
	sol.CRtn = cRtn
	sol.CUpd = cUpd
	sol.CIndKey = cIndKey

	// Each answered query saves a broadcast but pays the index search —
	// and, when the deployment keeps replica sets TTL-coherent, the
	// per-hit refresh fan-out (Params.WriteFanout, zero in the
	// paper-exact model).
	denom := sol.CSUnstr - cSIndx - p.WriteFanout
	if denom <= 0 {
		// Searching the index is no cheaper than broadcasting; nothing
		// is worth indexing (eq. 1 can never be positive).
		sol.FMin = math.Inf(1)
		return 0
	}
	fMin := cIndKey / denom
	sol.FMin = fMin
	return maxRankFor(dist, p.TotalQueries(), fMin)
}

// maxRankFor returns the highest rank worth indexing. The paper's test is
// probT(rank) ≥ fMin (eq. 4), but probT is a probability and saturates at
// one: a key queried several times per round — which happens whenever
// fMin > 1, outside the paper's plotted range but inside the model's
// domain — can never clear the threshold even though eq. 1, stated in
// query *counts*, trivially holds for it. We therefore also accept a rank
// when its expected per-round query count, totalQueries·prob(rank),
// reaches fMin; for the small probabilities of the paper's scenarios the
// two criteria coincide (probT ≈ E[queries] when both are ≪ 1). Both are
// non-increasing in rank, so binary search applies. Returns 0 if not even
// rank 1 qualifies.
func maxRankFor(dist *zipf.Distribution, totalQueries, fMin float64) int {
	if fMin <= 0 {
		return dist.Keys()
	}
	qualifies := func(rank int) bool {
		return dist.QueryProb(rank, totalQueries) >= fMin ||
			totalQueries*dist.PMF(rank) >= fMin
	}
	if !qualifies(1) {
		return 0
	}
	// sort.Search finds the first rank that no longer qualifies.
	n := dist.Keys()
	i := sort.Search(n, func(i int) bool {
		return !qualifies(i + 1)
	})
	return i // ranks 1..i qualify
}
