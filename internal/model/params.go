// Package model implements the paper's analytical cost model: the
// to-index-or-not-to-index decision (Section 2, equations 1–5), the message
// cost model (Section 3, equations 6–10), the three total-cost strategies of
// the evaluation (Section 4, equations 11–13) and the TTL selection-algorithm
// model (Section 5, equations 14–17).
//
// Everything the paper plots — Figures 1 through 4 — is a pure function of a
// Params value and a query frequency; the Sweep functions in this package
// produce exactly those series.
package model

import (
	"fmt"
	"math"
)

// Params holds the scenario parameters of the model, matching Table 1 of the
// paper symbol by symbol.
type Params struct {
	// NumPeers is the total number of peers in the network (numPeers).
	NumPeers int
	// Keys is the number of unique keys occurring in the network (keys).
	Keys int
	// Stor is each peer's storage capacity for indexing, in key–value
	// pairs (stor).
	Stor int
	// Repl is the replication factor for both index entries and content
	// (repl).
	Repl int
	// Alpha is the exponent of the Zipf query distribution (α).
	Alpha float64
	// FQry is the average query frequency per peer per round, in 1/s
	// (fQry). One round is one second.
	FQry float64
	// FUpd is the average update frequency per key per round (fUpd).
	FUpd float64
	// Env is the route-maintenance environment constant of eq. 8: probe
	// messages per routing entry per round (env).
	Env float64
	// Dup is the message duplication factor of searches in the
	// unstructured network (dup).
	Dup float64
	// Dup2 is the message duplication factor of floods in the replica
	// subnetwork (dup2).
	Dup2 float64
	// WriteFanout is the number of extra write messages an index HIT costs
	// on top of the search — the live deployment's replica-coherent
	// reset-on-hit refresh, which fans out to the other repl−1 members of
	// the key's replica set (internal/replica) instead of piggybacking on
	// the answer. Zero is the paper-exact model, where the refresh is
	// free. The fan-out charges against the benefit of indexing: both fMin
	// (eq. 2's break-even frequency) and the eq. 17 total cost see it.
	WriteFanout float64
	// TopKRound is the distributed top-k query rate per peer per round,
	// and TopKProbe the expected number of OpTopK probe legs one such
	// query costs (internal/topk's round protocol). Together they charge
	// the top-k traffic into the model: the eq. 17 total cost gains the
	// cluster-wide numPeers·TopKRound·TopKProbe msgs/round, and each
	// indexed key's holding cost cIndKey carries its amortized share of
	// that serving load — the peers holding the index are the peers
	// answering the probes — so fMin rises honestly under top-k pressure
	// instead of pretending the bandwidth is free. Zero (the default) is
	// the paper-exact model.
	TopKRound float64
	TopKProbe float64
}

// DefaultScenario returns the paper's sample scenario (Table 1): a news
// system with 20,000 peers, 2,000 articles × 20 metadata keys, replication
// 50, Zipf α = 1.2 [Srip01], env = 1/14 [MaCa03], dup = dup2 = 1.8 [LvCa02],
// one update per key per day, and the busy-period query rate of one query
// per peer every 30 seconds.
func DefaultScenario() Params {
	return Params{
		NumPeers: 20000,
		Keys:     40000,
		Stor:     100,
		Repl:     50,
		Alpha:    1.2,
		FQry:     1.0 / 30.0,
		FUpd:     1.0 / (3600.0 * 24.0),
		Env:      1.0 / 14.0,
		Dup:      1.8,
		Dup2:     1.8,
	}
}

// FrequencyGrid returns the eight query frequencies on the x-axis of
// Figures 1–4: one query per peer every 30, 60, 120, 300, 600, 1800, 3600
// and 7200 seconds.
func FrequencyGrid() []float64 {
	periods := []float64{30, 60, 120, 300, 600, 1800, 3600, 7200}
	out := make([]float64, len(periods))
	for i, p := range periods {
		out[i] = 1 / p
	}
	return out
}

// FormatFrequency renders a query frequency the way the paper labels its
// axes: as "1/30", "1/7200", …
func FormatFrequency(f float64) string {
	if f <= 0 {
		return "0"
	}
	period := 1 / f
	if r := math.Round(period); math.Abs(period-r) < 1e-9 {
		return fmt.Sprintf("1/%d", int64(r))
	}
	return fmt.Sprintf("%.4g", f)
}

// Validate checks that the parameters describe a well-posed scenario.
func (p Params) Validate() error {
	switch {
	case p.NumPeers < 2:
		return fmt.Errorf("model: NumPeers = %d, need at least 2", p.NumPeers)
	case p.Keys < 1:
		return fmt.Errorf("model: Keys = %d, need at least 1", p.Keys)
	case p.Stor < 1:
		return fmt.Errorf("model: Stor = %d, need at least 1", p.Stor)
	case p.Repl < 1:
		return fmt.Errorf("model: Repl = %d, need at least 1", p.Repl)
	case p.Repl > p.NumPeers:
		return fmt.Errorf("model: Repl = %d exceeds NumPeers = %d", p.Repl, p.NumPeers)
	case p.Alpha < 0 || math.IsNaN(p.Alpha) || math.IsInf(p.Alpha, 0):
		return fmt.Errorf("model: Alpha = %v must be non-negative and finite", p.Alpha)
	case p.FQry < 0 || math.IsNaN(p.FQry):
		return fmt.Errorf("model: FQry = %v must be non-negative", p.FQry)
	case p.FUpd < 0 || math.IsNaN(p.FUpd):
		return fmt.Errorf("model: FUpd = %v must be non-negative", p.FUpd)
	case p.Env < 0:
		return fmt.Errorf("model: Env = %v must be non-negative", p.Env)
	case p.Dup < 1:
		return fmt.Errorf("model: Dup = %v must be at least 1 (every search sends at least one copy)", p.Dup)
	case p.Dup2 < 1:
		return fmt.Errorf("model: Dup2 = %v must be at least 1", p.Dup2)
	case p.WriteFanout < 0 || math.IsNaN(p.WriteFanout) || math.IsInf(p.WriteFanout, 0):
		return fmt.Errorf("model: WriteFanout = %v must be non-negative and finite", p.WriteFanout)
	case p.TopKRound < 0 || math.IsNaN(p.TopKRound) || math.IsInf(p.TopKRound, 0):
		return fmt.Errorf("model: TopKRound = %v must be non-negative and finite", p.TopKRound)
	case p.TopKProbe < 0 || math.IsNaN(p.TopKProbe) || math.IsInf(p.TopKProbe, 0):
		return fmt.Errorf("model: TopKProbe = %v must be non-negative and finite", p.TopKProbe)
	}
	return nil
}

// TotalQueries returns the total queries per round sent by all peers
// together: numPeers · fQry.
func (p Params) TotalQueries() float64 {
	return float64(p.NumPeers) * p.FQry
}

// WithFQry returns a copy of p with the query frequency replaced; the sweep
// helpers use it to walk the frequency grid without mutating the base
// scenario.
func (p Params) WithFQry(f float64) Params {
	p.FQry = f
	return p
}
