package model

import (
	"math"
	"testing"

	"pdht/internal/zipf"
)

func TestProbInTTL(t *testing.T) {
	if probInTTL(0.5, 0) != 0 {
		t.Error("zero TTL keeps nothing in the index")
	}
	if probInTTL(0, 100) != 0 {
		t.Error("never-queried keys are never in the index")
	}
	if probInTTL(1, 5) != 1 {
		t.Error("every-round keys are always in the index")
	}
	// One round of TTL = the per-round query probability itself.
	approx(t, "probInTTL(p,1)", probInTTL(0.3, 1), 0.3, 1e-12)
	// Two rounds: 1-(1-0.3)² = 0.51.
	approx(t, "probInTTL(0.3,2)", probInTTL(0.3, 2), 0.51, 1e-12)
	// Tiny probabilities with large TTLs stay accurate: 1-(1-1e-9)^1e6 ≈ 1e-3.
	approx(t, "probInTTL(1e-9,1e6)", probInTTL(1e-9, 1e6), 9.995e-4, 1e-3)
	// Monotone in both arguments.
	if probInTTL(0.2, 10) <= probInTTL(0.1, 10) {
		t.Error("probInTTL must grow with query probability")
	}
	if probInTTL(0.1, 20) <= probInTTL(0.1, 10) {
		t.Error("probInTTL must grow with TTL")
	}
}

func TestSolveTTLDefaultScenario(t *testing.T) {
	p := DefaultScenario()
	sol, ttl, err := SolveTTLAuto(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	// keyTtl = 1/fMin ≈ 1460 rounds at fQry = 1/30.
	approx(t, "KeyTtl", ttl.KeyTtl, 1/sol.FMin, 1e-12)
	if ttl.KeyTtl < 1000 || ttl.KeyTtl > 2000 {
		t.Errorf("KeyTtl = %v, want ≈ 1460", ttl.KeyTtl)
	}
	// The TTL index holds *more* keys than ideal (reason II of §5.1:
	// unworthy keys get inserted for keyTtl rounds after a query).
	if ttl.IndexSize <= float64(sol.MaxRank) {
		t.Errorf("TTL index size %v should exceed ideal maxRank %d",
			ttl.IndexSize, sol.MaxRank)
	}
	// And answers at least as many queries.
	if ttl.PIndxd < sol.PIndxd-0.01 {
		t.Errorf("TTL pIndxd %v well below ideal %v", ttl.PIndxd, sol.PIndxd)
	}
	// The selection algorithm is costlier than ideal partial indexing
	// (reasons I–IV of §5.1) but still far below noIndex at 1/30.
	ideal := PartialCost(sol)
	if ttl.Cost <= ideal {
		t.Errorf("TTL cost %v should exceed ideal cost %v", ttl.Cost, ideal)
	}
	if ttl.Cost >= NoIndexCost(p) {
		t.Errorf("TTL cost %v should be far below noIndex %v", ttl.Cost, NoIndexCost(p))
	}
}

func TestSolveTTLZeroTTL(t *testing.T) {
	p := DefaultScenario()
	ttl, err := SolveTTL(p, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ttl.IndexSize != 0 || ttl.PIndxd != 0 {
		t.Errorf("TTL=0: size=%v pIndxd=%v, want 0/0", ttl.IndexSize, ttl.PIndxd)
	}
	// Every query pays a (free, empty-index) lookup, a broadcast, and a
	// re-insert; with an empty index cSIndx2 = repl·dup2 = 90.
	q := p.TotalQueries()
	want := q * (90 + 720 + 90)
	approx(t, "cost(TTL=0)", ttl.Cost, want, 1e-9)
}

func TestSolveTTLInfiniteTTLIndexesEverything(t *testing.T) {
	p := DefaultScenario()
	ttl, err := SolveTTL(p, nil, 1e12)
	if err != nil {
		t.Fatal(err)
	}
	// Every key that can be queried eventually sticks.
	if ttl.IndexSize < float64(p.Keys)*0.999 {
		t.Errorf("IndexSize = %v, want ≈ %d", ttl.IndexSize, p.Keys)
	}
	if ttl.PIndxd < 0.999 {
		t.Errorf("PIndxd = %v, want ≈ 1", ttl.PIndxd)
	}
}

func TestSolveTTLMonotoneInTTL(t *testing.T) {
	p := DefaultScenario()
	dist := zipf.MustNew(p.Alpha, p.Keys)
	prevSize, prevHit := -1.0, -1.0
	for _, ttlRounds := range []float64{10, 100, 1000, 10000} {
		ttl, err := SolveTTL(p, dist, ttlRounds)
		if err != nil {
			t.Fatal(err)
		}
		if ttl.IndexSize < prevSize {
			t.Errorf("index size not monotone in TTL at %v", ttlRounds)
		}
		if ttl.PIndxd < prevHit {
			t.Errorf("pIndxd not monotone in TTL at %v", ttlRounds)
		}
		prevSize, prevHit = ttl.IndexSize, ttl.PIndxd
	}
}

func TestSolveTTLValidation(t *testing.T) {
	p := DefaultScenario()
	if _, err := SolveTTL(p, nil, -1); err == nil {
		t.Error("negative TTL accepted")
	}
	if _, err := SolveTTL(p, nil, math.NaN()); err == nil {
		t.Error("NaN TTL accepted")
	}
	bad := p
	bad.Stor = 0
	if _, err := SolveTTL(bad, nil, 100); err == nil {
		t.Error("invalid params accepted")
	}
	wrongDist := zipf.MustNew(p.Alpha, 7)
	if _, err := SolveTTL(p, wrongDist, 100); err == nil {
		t.Error("mismatched distribution accepted")
	}
}

func TestIdealKeyTtl(t *testing.T) {
	sol := Solution{FMin: 0.001}
	approx(t, "IdealKeyTtl", IdealKeyTtl(sol), 1000, 1e-12)
	if IdealKeyTtl(Solution{FMin: math.Inf(1)}) != 0 {
		t.Error("infinite fMin must yield TTL 0")
	}
	if IdealKeyTtl(Solution{FMin: 0}) != 0 {
		t.Error("zero fMin must yield TTL 0")
	}
}

// eq. 17 consistency: recompute the cost from the solution's own components.
func TestSolveTTLCostSelfConsistent(t *testing.T) {
	p := DefaultScenario()
	ttl, err := SolveTTL(p, nil, 1460)
	if err != nil {
		t.Fatal(err)
	}
	q := p.TotalQueries()
	want := ttl.IndexSize*ttl.CRtn +
		ttl.PIndxd*q*ttl.CSIndx2 +
		(1-ttl.PIndxd)*q*(2*ttl.CSIndx2+CSUnstr(p))
	approx(t, "eq17", ttl.Cost, want, 1e-12)
}
