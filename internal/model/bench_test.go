package model

import (
	"testing"

	"pdht/internal/zipf"
)

func BenchmarkSolve(b *testing.B) {
	p := DefaultScenario()
	dist := zipf.MustNew(p.Alpha, p.Keys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, dist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTTL(b *testing.B) {
	p := DefaultScenario()
	dist := zipf.MustNew(p.Alpha, p.Keys)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveTTL(p, dist, 1460); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSweep(b *testing.B) {
	p := DefaultScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}
