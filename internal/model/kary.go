package model

import (
	"fmt"
	"math"
)

// The paper's footnote 3: "For simplicity we assume a binary key space.
// However, the analysis can also be generalized for a k-ary key space."
// This file is that generalization — the Pastry/Tapestry design axis, where
// a larger branching factor buys shorter lookups (log_k instead of log₂) at
// the price of bigger routing tables ((k−1) entries per level instead of
// one) and therefore more probing traffic in eq. 8.

// KaryCSIndx generalizes eq. 7: the expected index search cost in a k-ary
// key space, ½·log_k(numActivePeers) messages. k = 2 reduces to CSIndx.
func KaryCSIndx(numActivePeers float64, k int) float64 {
	if numActivePeers < 2 || k < 2 {
		return 0
	}
	return 0.5 * math.Log(numActivePeers) / math.Log(float64(k))
}

// KaryCRtn generalizes eq. 8: each routing level holds k−1 entries, so the
// per-key maintenance cost is env·(k−1)·log_k(numActivePeers)·
// numActivePeers / indexedKeys. k = 2 reduces to CRtn.
func KaryCRtn(p Params, numActivePeers, indexedKeys float64, k int) float64 {
	if indexedKeys <= 0 || numActivePeers < 2 || k < 2 {
		return 0
	}
	levels := math.Log(numActivePeers) / math.Log(float64(k))
	return p.Env * float64(k-1) * levels * numActivePeers / indexedKeys
}

// KaryPoint is one branching factor's cost picture at a fixed scenario.
type KaryPoint struct {
	K        int
	CSIndx   float64 // per-lookup messages
	CRtn     float64 // per-key per-round maintenance messages
	IndexAll float64 // eq. 11 with k-ary routing
}

// KarySweep evaluates the k-ary trade-off for the full index at the given
// scenario: lookups get cheaper with k while maintenance gets more
// expensive, so total indexAll cost has an interior optimum that moves
// with the query rate.
func KarySweep(p Params, ks []int) ([]KaryPoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16, 32}
	}
	keys := float64(p.Keys)
	nap := NumActivePeers(p, keys)
	out := make([]KaryPoint, 0, len(ks))
	for _, k := range ks {
		if k < 2 {
			return nil, fmt.Errorf("model: branching factor %d must be at least 2", k)
		}
		cs := KaryCSIndx(nap, k)
		cr := KaryCRtn(p, nap, keys, k)
		cUpd := CUpd(p, cs)
		total := keys*(cr+cUpd) + p.TotalQueries()*cs
		out = append(out, KaryPoint{K: k, CSIndx: cs, CRtn: cr, IndexAll: total})
	}
	return out, nil
}

// OptimalKary returns the branching factor among ks (default 2..64 powers
// of two) minimizing the indexAll cost at the scenario.
func OptimalKary(p Params, ks []int) (KaryPoint, error) {
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16, 32, 64}
	}
	pts, err := KarySweep(p, ks)
	if err != nil {
		return KaryPoint{}, err
	}
	best := pts[0]
	for _, pt := range pts[1:] {
		if pt.IndexAll < best.IndexAll {
			best = pt
		}
	}
	return best, nil
}
