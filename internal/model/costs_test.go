package model

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

// Hand-computed values for the paper's scenario (Table 1):
//
//	cSUnstr = 20000/50 · 1.8 = 720 msg
//	full index: numActivePeers = 40000·50/100 = 20000
//	cSIndx = ½·log₂(20000) ≈ 7.1438 msg
//	cRtn = (1/14)·log₂(20000)·20000/40000 ≈ 0.51027 msg/s
//	cUpd = (7.1438 + 50·1.8)/86400 ≈ 0.0011243 msg/s
func TestCostsScenarioValues(t *testing.T) {
	p := DefaultScenario()
	approx(t, "cSUnstr", CSUnstr(p), 720, 1e-12)

	nap := NumActivePeers(p, float64(p.Keys))
	if nap != 20000 {
		t.Fatalf("NumActivePeers(full) = %v, want 20000", nap)
	}
	cs := CSIndx(nap)
	approx(t, "cSIndx", cs, 0.5*math.Log2(20000), 1e-12)
	approx(t, "cSIndx(numeric)", cs, 7.1438, 1e-4)

	approx(t, "cRtn", CRtn(p, nap, 40000), (1.0/14.0)*math.Log2(20000)*0.5, 1e-12)
	approx(t, "cUpd", CUpd(p, cs), (cs+90)/86400, 1e-12)
	approx(t, "cIndKey", CIndKey(p, nap, 40000),
		CRtn(p, nap, 40000)+CUpd(p, cs), 1e-12)
	approx(t, "cSIndx2", CSIndx2(p, nap), cs+90, 1e-12)
}

func TestNumActivePeersCapAndFloor(t *testing.T) {
	p := DefaultScenario()
	// Small index: 100 keys × 50 replicas / 100 per peer = 50 peers.
	if got := NumActivePeers(p, 100); got != 50 {
		t.Errorf("NumActivePeers(100) = %v, want 50", got)
	}
	// Huge index is capped at the population.
	if got := NumActivePeers(p, 1e9); got != 20000 {
		t.Errorf("NumActivePeers(1e9) = %v, want 20000", got)
	}
	// Empty index needs nobody.
	if got := NumActivePeers(p, 0); got != 0 {
		t.Errorf("NumActivePeers(0) = %v, want 0", got)
	}
	if got := NumActivePeers(p, -5); got != 0 {
		t.Errorf("NumActivePeers(-5) = %v, want 0", got)
	}
	// Tiny index still needs two peers for routing to be meaningful.
	if got := NumActivePeers(p, 1); got != 2 {
		t.Errorf("NumActivePeers(1) = %v, want 2 (floor)", got)
	}
	// Ceil, not floor: 101 keys need 51 peers.
	if got := NumActivePeers(p, 101); got != 51 {
		t.Errorf("NumActivePeers(101) = %v, want 51", got)
	}
}

func TestCSIndxEdgeCases(t *testing.T) {
	if CSIndx(0) != 0 || CSIndx(1) != 0 {
		t.Error("CSIndx of a degenerate index must be 0")
	}
	approx(t, "CSIndx(2)", CSIndx(2), 0.5, 1e-12)
	approx(t, "CSIndx(1024)", CSIndx(1024), 5, 1e-12)
}

func TestCRtnEdgeCases(t *testing.T) {
	p := DefaultScenario()
	if CRtn(p, 0, 0) != 0 {
		t.Error("CRtn with empty index must be 0")
	}
	if CRtn(p, 20000, 0) != 0 {
		t.Error("CRtn with zero keys must be 0")
	}
	// The per-key routing cost grows when fewer keys amortize the same
	// maintenance traffic.
	few := CRtn(p, 1000, 100)
	many := CRtn(p, 1000, 10000)
	if few <= many {
		t.Errorf("per-key cRtn should shrink with more keys: %v vs %v", few, many)
	}
}

func TestCUpdScalesWithUpdateRate(t *testing.T) {
	p := DefaultScenario()
	base := CUpd(p, 7)
	p.FUpd *= 10
	if got := CUpd(p, 7); math.Abs(got-10*base) > 1e-12 {
		t.Errorf("CUpd should be linear in fUpd: %v vs 10×%v", got, base)
	}
	p.FUpd = 0
	if CUpd(p, 7) != 0 {
		t.Error("CUpd must vanish without updates")
	}
}

// Property: searching the unstructured network must be much more expensive
// than searching the index in any realistically replicated network — the
// premise the whole paper rests on (Section 3).
func TestSearchCostOrdering(t *testing.T) {
	p := DefaultScenario()
	for _, keys := range []float64{10, 100, 1000, 40000} {
		nap := NumActivePeers(p, keys)
		if CSIndx(nap) >= CSUnstr(p) {
			t.Errorf("cSIndx(%v keys) = %v not below cSUnstr = %v",
				keys, CSIndx(nap), CSUnstr(p))
		}
	}
}
