package model

import (
	"math"
	"testing"
)

func TestDefaultScenarioMatchesTable1(t *testing.T) {
	p := DefaultScenario()
	if p.NumPeers != 20000 {
		t.Errorf("NumPeers = %d, want 20000", p.NumPeers)
	}
	if p.Keys != 40000 {
		t.Errorf("Keys = %d, want 40000", p.Keys)
	}
	if p.Stor != 100 {
		t.Errorf("Stor = %d, want 100", p.Stor)
	}
	if p.Repl != 50 {
		t.Errorf("Repl = %d, want 50", p.Repl)
	}
	if p.Alpha != 1.2 {
		t.Errorf("Alpha = %v, want 1.2", p.Alpha)
	}
	if math.Abs(p.FQry-1.0/30.0) > 1e-15 {
		t.Errorf("FQry = %v, want 1/30", p.FQry)
	}
	if math.Abs(p.FUpd-1.0/86400.0) > 1e-15 {
		t.Errorf("FUpd = %v, want 1/86400", p.FUpd)
	}
	if math.Abs(p.Env-1.0/14.0) > 1e-15 {
		t.Errorf("Env = %v, want 1/14", p.Env)
	}
	if p.Dup != 1.8 || p.Dup2 != 1.8 {
		t.Errorf("Dup/Dup2 = %v/%v, want 1.8/1.8", p.Dup, p.Dup2)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("default scenario does not validate: %v", err)
	}
}

func TestFrequencyGrid(t *testing.T) {
	g := FrequencyGrid()
	if len(g) != 8 {
		t.Fatalf("grid has %d points, want 8", len(g))
	}
	wantPeriods := []float64{30, 60, 120, 300, 600, 1800, 3600, 7200}
	for i, f := range g {
		if math.Abs(1/f-wantPeriods[i]) > 1e-9 {
			t.Errorf("grid[%d] = %v, want 1/%v", i, f, wantPeriods[i])
		}
	}
	for i := 1; i < len(g); i++ {
		if g[i] >= g[i-1] {
			t.Error("grid must be strictly decreasing in frequency")
		}
	}
}

func TestFormatFrequency(t *testing.T) {
	cases := []struct {
		f    float64
		want string
	}{
		{1.0 / 30.0, "1/30"},
		{1.0 / 7200.0, "1/7200"},
		{0, "0"},
		{-1, "0"},
		{0.123, "0.123"},
	}
	for _, c := range cases {
		if got := FormatFrequency(c.f); got != c.want {
			t.Errorf("FormatFrequency(%v) = %q, want %q", c.f, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	base := DefaultScenario()
	mutations := []struct {
		name string
		mut  func(*Params)
	}{
		{"peers", func(p *Params) { p.NumPeers = 1 }},
		{"keys", func(p *Params) { p.Keys = 0 }},
		{"stor", func(p *Params) { p.Stor = 0 }},
		{"repl-zero", func(p *Params) { p.Repl = 0 }},
		{"repl-exceeds", func(p *Params) { p.Repl = p.NumPeers + 1 }},
		{"alpha-neg", func(p *Params) { p.Alpha = -0.1 }},
		{"alpha-nan", func(p *Params) { p.Alpha = math.NaN() }},
		{"alpha-inf", func(p *Params) { p.Alpha = math.Inf(1) }},
		{"fqry-neg", func(p *Params) { p.FQry = -1 }},
		{"fqry-nan", func(p *Params) { p.FQry = math.NaN() }},
		{"fupd-neg", func(p *Params) { p.FUpd = -1 }},
		{"env-neg", func(p *Params) { p.Env = -0.5 }},
		{"dup-lt1", func(p *Params) { p.Dup = 0.9 }},
		{"dup2-lt1", func(p *Params) { p.Dup2 = 0 }},
	}
	for _, m := range mutations {
		p := base
		m.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", m.name)
		}
	}
}

func TestTotalQueries(t *testing.T) {
	p := DefaultScenario()
	want := 20000.0 / 30.0
	if got := p.TotalQueries(); math.Abs(got-want) > 1e-9 {
		t.Errorf("TotalQueries = %v, want %v", got, want)
	}
}

func TestWithFQryDoesNotMutate(t *testing.T) {
	p := DefaultScenario()
	q := p.WithFQry(0.5)
	if q.FQry != 0.5 {
		t.Errorf("WithFQry result = %v", q.FQry)
	}
	if p.FQry != 1.0/30.0 {
		t.Error("WithFQry mutated the receiver")
	}
	if q.NumPeers != p.NumPeers {
		t.Error("WithFQry changed unrelated fields")
	}
}
