package model

import (
	"math"
	"testing"
)

func TestKaryReducesToBinary(t *testing.T) {
	p := DefaultScenario()
	nap := NumActivePeers(p, 40000)
	approx(t, "KaryCSIndx(2)", KaryCSIndx(nap, 2), CSIndx(nap), 1e-12)
	approx(t, "KaryCRtn(2)", KaryCRtn(p, nap, 40000, 2), CRtn(p, nap, 40000), 1e-12)
}

func TestKaryLookupVsMaintenanceTradeoff(t *testing.T) {
	p := DefaultScenario()
	nap := NumActivePeers(p, 40000)
	// Lookups get monotonically cheaper with k, maintenance costlier.
	prevCS, prevCR := math.Inf(1), 0.0
	for _, k := range []int{2, 4, 8, 16, 32} {
		cs := KaryCSIndx(nap, k)
		cr := KaryCRtn(p, nap, 40000, k)
		if cs >= prevCS {
			t.Errorf("k=%d: cSIndx %v did not shrink from %v", k, cs, prevCS)
		}
		if cr <= prevCR {
			t.Errorf("k=%d: cRtn %v did not grow from %v", k, cr, prevCR)
		}
		prevCS, prevCR = cs, cr
	}
	// Sanity: ½·log₁₆(20000) = ½·log₂(20000)/4.
	approx(t, "log16", KaryCSIndx(nap, 16), CSIndx(nap)/4, 1e-12)
}

func TestKaryDegenerate(t *testing.T) {
	p := DefaultScenario()
	if KaryCSIndx(1, 4) != 0 || KaryCSIndx(100, 1) != 0 {
		t.Error("degenerate inputs must cost 0")
	}
	if KaryCRtn(p, 0, 100, 4) != 0 || KaryCRtn(p, 100, 0, 4) != 0 {
		t.Error("degenerate maintenance must cost 0")
	}
}

func TestKarySweepShape(t *testing.T) {
	p := DefaultScenario()
	pts, err := KarySweep(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	// At the paper's query rates maintenance dominates the full index,
	// so bigger k (more probing) must cost more in total and k = 2 wins.
	for i := 1; i < len(pts); i++ {
		if pts[i].IndexAll <= pts[i-1].IndexAll {
			t.Errorf("k=%d: indexAll %v not above k=%d's %v",
				pts[i].K, pts[i].IndexAll, pts[i-1].K, pts[i-1].IndexAll)
		}
	}
	best, err := OptimalKary(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.K != 2 {
		t.Errorf("optimal k = %d, want 2 in a maintenance-dominated scenario", best.K)
	}
}

func TestKaryOptimumMovesWithQueryRate(t *testing.T) {
	// Crank queries up for free maintenance: now lookups dominate and a
	// bigger branching factor wins.
	p := DefaultScenario()
	p.Env = 1e-6
	p.FQry = 10 // extreme query pressure
	best, err := OptimalKary(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if best.K <= 2 {
		t.Errorf("optimal k = %d, want > 2 in a lookup-dominated scenario", best.K)
	}
}

func TestKarySweepValidation(t *testing.T) {
	p := DefaultScenario()
	if _, err := KarySweep(p, []int{1}); err == nil {
		t.Error("branching factor 1 accepted")
	}
	p.Keys = 0
	if _, err := KarySweep(p, nil); err == nil {
		t.Error("invalid params accepted")
	}
}
