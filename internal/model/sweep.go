package model

import (
	"fmt"

	"pdht/internal/zipf"
)

// SweepPoint is one x-axis position of Figures 1–4: all strategy costs,
// savings and index statistics at one query frequency.
type SweepPoint struct {
	// FQry is the per-peer query frequency (x-axis of every figure).
	FQry float64

	// Figure 1: total messages per second.
	IndexAll float64
	NoIndex  float64
	Partial  float64

	// Figure 2: savings of ideal partial indexing.
	SavingsVsIndexAll float64
	SavingsVsNoIndex  float64

	// Figure 3: fraction of keys worth indexing and hit probability.
	IndexFraction float64 // maxRank / keys ("index size", solid)
	PIndxd        float64 // eq. 5 ("pIndxd", dashed)

	// Figure 4: the selection algorithm.
	PartialTTL           float64 // eq. 17
	TTLSavingsVsIndexAll float64
	TTLSavingsVsNoIndex  float64

	// Underlying solutions, for callers that need the components.
	Solution Solution
	TTL      TTLSolution
}

// Sweep evaluates the full model — ideal partial indexing and the TTL
// selection algorithm — at each query frequency, holding every other
// parameter of base fixed. It reproduces the series of Figures 1–4 in one
// pass. freqs defaults to FrequencyGrid() when nil.
func Sweep(base Params, freqs []float64) ([]SweepPoint, error) {
	if freqs == nil {
		freqs = FrequencyGrid()
	}
	dist, err := zipf.New(base.Alpha, base.Keys)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(freqs))
	for _, f := range freqs {
		p := base.WithFQry(f)
		costs, err := CostsAt(p, dist)
		if err != nil {
			return nil, fmt.Errorf("model: sweep at fQry=%v: %w", f, err)
		}
		ttl, err := SolveTTL(p, dist, IdealKeyTtl(costs.Solution))
		if err != nil {
			return nil, fmt.Errorf("model: TTL sweep at fQry=%v: %w", f, err)
		}
		out = append(out, SweepPoint{
			FQry:                 f,
			IndexAll:             costs.IndexAll,
			NoIndex:              costs.NoIndex,
			Partial:              costs.Partial,
			SavingsVsIndexAll:    Savings(costs.Partial, costs.IndexAll),
			SavingsVsNoIndex:     Savings(costs.Partial, costs.NoIndex),
			IndexFraction:        float64(costs.Solution.MaxRank) / float64(p.Keys),
			PIndxd:               costs.Solution.PIndxd,
			PartialTTL:           ttl.Cost,
			TTLSavingsVsIndexAll: Savings(ttl.Cost, costs.IndexAll),
			TTLSavingsVsNoIndex:  Savings(ttl.Cost, costs.NoIndex),
			Solution:             costs.Solution,
			TTL:                  ttl,
		})
	}
	return out, nil
}

// TTLSensitivityPoint is one row of the §5.1.1 sensitivity analysis: the
// selection algorithm evaluated with a mis-estimated keyTtl.
type TTLSensitivityPoint struct {
	FQry              float64
	Error             float64 // relative estimation error, e.g. −0.5 or +0.5
	KeyTtl            float64 // the mis-estimated TTL actually used
	Cost              float64
	SavingsVsNoIndex  float64
	SavingsVsIndexAll float64
	// DeltaSavings is the loss (positive) or gain relative to the
	// correctly estimated TTL, measured on savings vs noIndex.
	DeltaSavings float64
}

// TTLSensitivity reproduces the §5.1.1 claim: for each query frequency and
// each relative estimation error, evaluate the selection algorithm with
// keyTtl = ideal·(1+error) and report how much of the savings survives.
// errors of ±0.5 correspond to the paper's "±50% of the ideal keyTtl".
func TTLSensitivity(base Params, freqs, errors []float64) ([]TTLSensitivityPoint, error) {
	if freqs == nil {
		freqs = FrequencyGrid()
	}
	if len(errors) == 0 {
		errors = []float64{-0.5, 0, 0.5}
	}
	dist, err := zipf.New(base.Alpha, base.Keys)
	if err != nil {
		return nil, err
	}
	var out []TTLSensitivityPoint
	for _, f := range freqs {
		p := base.WithFQry(f)
		costs, err := CostsAt(p, dist)
		if err != nil {
			return nil, err
		}
		ideal := IdealKeyTtl(costs.Solution)
		ref, err := SolveTTL(p, dist, ideal)
		if err != nil {
			return nil, err
		}
		refSavings := Savings(ref.Cost, costs.NoIndex)
		for _, e := range errors {
			ttl, err := SolveTTL(p, dist, ideal*(1+e))
			if err != nil {
				return nil, err
			}
			s := Savings(ttl.Cost, costs.NoIndex)
			out = append(out, TTLSensitivityPoint{
				FQry:              f,
				Error:             e,
				KeyTtl:            ideal * (1 + e),
				Cost:              ttl.Cost,
				SavingsVsNoIndex:  s,
				SavingsVsIndexAll: Savings(ttl.Cost, costs.IndexAll),
				DeltaSavings:      refSavings - s,
			})
		}
	}
	return out, nil
}
