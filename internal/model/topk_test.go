package model

import (
	"math"
	"testing"
)

// Zero top-k rates must leave the model paper-exact: both the ideal
// solution and the TTL model evaluate bit-identically to the baseline.
func TestTopKZeroIsPaperExact(t *testing.T) {
	base := DefaultScenario()
	withZero := base
	withZero.TopKRound, withZero.TopKProbe = 0, 0

	s1, err := Solve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Solve(withZero, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.FMin != s2.FMin || s1.MaxRank != s2.MaxRank {
		t.Fatalf("zero top-k rates changed the solution: %+v vs %+v", s1, s2)
	}

	t1, err := SolveTTL(base, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := SolveTTL(withZero, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Cost != t2.Cost {
		t.Fatalf("zero top-k rates changed eq. 17: %v vs %v", t1.Cost, t2.Cost)
	}
}

// Top-k traffic must charge the model in the honest direction: fMin rises
// (fewer marginal keys worth indexing) and the eq. 17 total cost grows by
// exactly the cluster-wide probe traffic.
func TestTopKChargesFMinAndCost(t *testing.T) {
	base := DefaultScenario()
	loaded := base
	loaded.TopKRound = 0.05 // one top-k query per peer every 20 rounds
	loaded.TopKProbe = 12

	sBase, err := Solve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	sLoaded, err := Solve(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(sLoaded.FMin > sBase.FMin) {
		t.Fatalf("fMin = %v under top-k load, want above baseline %v", sLoaded.FMin, sBase.FMin)
	}
	if sLoaded.MaxRank > sBase.MaxRank {
		t.Fatalf("maxRank = %d under top-k load, want ≤ baseline %d", sLoaded.MaxRank, sBase.MaxRank)
	}

	tBase, err := SolveTTL(base, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	tLoaded, err := SolveTTL(loaded, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	extra := float64(loaded.NumPeers) * loaded.TopKRound * loaded.TopKProbe
	if got := tLoaded.Cost - tBase.Cost; math.Abs(got-extra) > 1e-6*extra {
		t.Fatalf("eq. 17 grew by %v, want the top-k traffic term %v", got, extra)
	}
}

func TestTopKParamsValidate(t *testing.T) {
	p := DefaultScenario()
	p.TopKRound = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative TopKRound validated")
	}
	p = DefaultScenario()
	p.TopKProbe = math.Inf(1)
	if err := p.Validate(); err == nil {
		t.Fatal("infinite TopKProbe validated")
	}
}
