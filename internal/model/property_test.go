package model

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomParams draws a random valid scenario, spanning three orders of
// magnitude in every dimension the model exposes.
func randomParams(rng *rand.Rand) Params {
	peers := 10 + rng.IntN(100000)
	repl := 1 + rng.IntN(peers)
	return Params{
		NumPeers: peers,
		Keys:     1 + rng.IntN(100000),
		Stor:     1 + rng.IntN(1000),
		Repl:     repl,
		Alpha:    rng.Float64() * 2.5,
		FQry:     math.Pow(10, -5+rng.Float64()*5), // 1e-5 … 1
		FUpd:     math.Pow(10, -7+rng.Float64()*4),
		Env:      rng.Float64(),
		Dup:      1 + rng.Float64()*3,
		Dup2:     1 + rng.Float64()*3,
	}
}

// Property: Solve never errors on valid parameters and always returns a
// self-consistent solution — MaxRank within bounds, probabilities within
// [0,1], costs non-negative, and the partial cost never above both
// baselines (it can always mimic either extreme).
func TestSolvePropertyRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewPCG(60, 61))
	f := func() bool {
		p := randomParams(rng)
		sol, err := Solve(p, nil)
		if err != nil {
			t.Logf("Solve error on %+v: %v", p, err)
			return false
		}
		if sol.MaxRank < 0 || sol.MaxRank > p.Keys {
			t.Logf("MaxRank %d out of bounds for %+v", sol.MaxRank, p)
			return false
		}
		if sol.PIndxd < 0 || sol.PIndxd > 1+1e-12 {
			t.Logf("PIndxd %v out of bounds", sol.PIndxd)
			return false
		}
		if sol.CSUnstr < 0 || sol.CSIndx < 0 || sol.CIndKey < 0 {
			t.Logf("negative cost component in %+v", sol)
			return false
		}
		partial := PartialCost(sol)
		indexAll := IndexAllCost(p)
		noIndex := NoIndexCost(p)
		if partial < 0 {
			t.Logf("negative partial cost %v", partial)
			return false
		}
		// Partial indexing subsumes both extremes, so it should not
		// land far above the better of the two. It *can* overshoot
		// moderately: the paper's per-key rule (eq. 1) prices each
		// key against the current cost level but not the externality
		// that including it enlarges numActivePeers and raises
		// everyone's cRtn. Measured overshoot across millions of
		// random scenarios stays under ~15%; we allow 35% headroom.
		best := math.Min(indexAll, noIndex)
		if partial > best*1.35+1 {
			t.Logf("partial %v far above best baseline %v for %+v", partial, best, p)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the TTL model is well-behaved across random scenarios and TTLs.
func TestSolveTTLPropertyRandomScenarios(t *testing.T) {
	rng := rand.New(rand.NewPCG(62, 63))
	f := func() bool {
		p := randomParams(rng)
		ttl := math.Pow(10, rng.Float64()*5) // 1 … 100000 rounds
		sol, err := SolveTTL(p, nil, ttl)
		if err != nil {
			t.Logf("SolveTTL error on %+v: %v", p, err)
			return false
		}
		if sol.PIndxd < 0 || sol.PIndxd > 1+1e-9 {
			t.Logf("TTL PIndxd %v out of bounds", sol.PIndxd)
			return false
		}
		if sol.IndexSize < 0 || sol.IndexSize > float64(p.Keys)+1e-6 {
			t.Logf("TTL index size %v out of bounds", sol.IndexSize)
			return false
		}
		if sol.Cost < 0 {
			t.Logf("negative TTL cost %v", sol.Cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: savings are always ≤ 1 and the sweep never produces NaNs.
func TestSweepPropertyNoNaNs(t *testing.T) {
	rng := rand.New(rand.NewPCG(64, 65))
	for trial := 0; trial < 25; trial++ {
		p := randomParams(rng)
		pts, err := Sweep(p, nil)
		if err != nil {
			t.Fatalf("sweep error on %+v: %v", p, err)
		}
		for _, pt := range pts {
			for name, v := range map[string]float64{
				"indexAll":   pt.IndexAll,
				"noIndex":    pt.NoIndex,
				"partial":    pt.Partial,
				"partialTTL": pt.PartialTTL,
				"savIdxAll":  pt.SavingsVsIndexAll,
				"savNoIdx":   pt.SavingsVsNoIndex,
				"pIndxd":     pt.PIndxd,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s is %v at fQry %v for %+v", name, v, pt.FQry, p)
				}
			}
			if pt.SavingsVsIndexAll > 1 || pt.SavingsVsNoIndex > 1 {
				t.Fatalf("savings above 1 at fQry %v for %+v", pt.FQry, p)
			}
		}
	}
}
