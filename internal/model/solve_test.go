package model

import (
	"math"
	"testing"

	"pdht/internal/zipf"
)

func TestSolveDefaultScenario(t *testing.T) {
	sol, err := Solve(DefaultScenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-estimated for Table 1 at fQry = 1/30 (see costs_test.go for
	// the components): fMin ≈ 6.9e-4 queries/round and roughly 25–26k of
	// the 40k keys worth indexing.
	if sol.FMin < 5e-4 || sol.FMin > 9e-4 {
		t.Errorf("FMin = %v, want ≈ 6.9e-4", sol.FMin)
	}
	if sol.MaxRank < 23000 || sol.MaxRank > 28000 {
		t.Errorf("MaxRank = %d, want ≈ 25600", sol.MaxRank)
	}
	// Zipf is heavy-headed: the indexed keys answer almost all queries.
	if sol.PIndxd < 0.97 || sol.PIndxd > 1 {
		t.Errorf("PIndxd = %v, want ≈ 0.99", sol.PIndxd)
	}
	if sol.Iterations > 20 {
		t.Errorf("fixed point took %d iterations", sol.Iterations)
	}
	if sol.CSUnstr != 720 {
		t.Errorf("CSUnstr = %v, want 720", sol.CSUnstr)
	}
	// The fixed point must be self-consistent: re-evaluating the
	// components at the solved index size reproduces the recorded fMin.
	nap := NumActivePeers(sol.Params, float64(sol.MaxRank))
	if math.Abs(nap-sol.NumActivePeers) > 1.5 {
		t.Errorf("recorded nap %v vs recomputed %v", sol.NumActivePeers, nap)
	}
	fMin := CIndKey(sol.Params, nap, float64(sol.MaxRank)) / (sol.CSUnstr - CSIndx(nap))
	if math.Abs(fMin-sol.FMin) > 0.05*sol.FMin {
		t.Errorf("recorded fMin %v vs recomputed %v", sol.FMin, fMin)
	}
}

func TestSolveMaxRankGrowsWithQueryRate(t *testing.T) {
	base := DefaultScenario()
	dist := zipf.MustNew(base.Alpha, base.Keys)
	prev := -1
	// Walk the grid from calmest to busiest: more queries make more keys
	// worth indexing (Fig. 3 read right to left).
	freqs := FrequencyGrid()
	for i := len(freqs) - 1; i >= 0; i-- {
		sol, err := Solve(base.WithFQry(freqs[i]), dist)
		if err != nil {
			t.Fatal(err)
		}
		if sol.MaxRank < prev {
			t.Errorf("fQry=%s: MaxRank %d decreased from %d",
				FormatFrequency(freqs[i]), sol.MaxRank, prev)
		}
		prev = sol.MaxRank
	}
}

func TestSolveNothingWorthIndexing(t *testing.T) {
	// With essentially no queries, probT of even the top key falls below
	// fMin and the index should stay empty.
	p := DefaultScenario().WithFQry(1e-12)
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank != 0 {
		t.Errorf("MaxRank = %d, want 0 for a dead network", sol.MaxRank)
	}
	if sol.PIndxd != 0 {
		t.Errorf("PIndxd = %v, want 0", sol.PIndxd)
	}
}

func TestSolveTinyNetworkIndexesOnlyHotHead(t *testing.T) {
	// A tiny, heavily replicated network: broadcasting costs only
	// numPeers/repl·dup = 2·1.8 = 3.6 messages, so almost nothing is
	// worth indexing — but a handful of hot keys still amortize, because
	// a tiny index needs only a few active peers and lookups get cheap.
	p := DefaultScenario()
	p.NumPeers = 100
	p.Repl = 50
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank <= 0 || sol.MaxRank > 100 {
		t.Errorf("MaxRank = %d, want a small positive head", sol.MaxRank)
	}
	// The solution must still be an improvement: partial below noIndex.
	if pc := PartialCost(sol); pc >= NoIndexCost(p) {
		t.Errorf("partial %v not below noIndex %v", pc, NoIndexCost(p))
	}
}

func TestSolveBroadcastStrictlyCheaperThanLookup(t *testing.T) {
	// Full replication with one slot per peer: even the first indexed key
	// needs numPeers active peers, so cSIndx = ½·log₂(20000) ≈ 7.1
	// exceeds cSUnstr = 1·1.8. Equation 1 can never be positive and the
	// index must stay empty.
	p := DefaultScenario()
	p.Repl = p.NumPeers
	p.Stor = 1
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank != 0 {
		t.Errorf("MaxRank = %d, want 0 when broadcast beats lookup outright", sol.MaxRank)
	}
	if !math.IsInf(sol.FMin, 1) {
		t.Errorf("FMin = %v, want +Inf", sol.FMin)
	}
}

func TestSolveRuinousMaintenanceEmptiesIndex(t *testing.T) {
	// An absurd probing rate at a calm query load: holding any key costs
	// more than its queries could ever save, so the fixed point settles
	// on an empty index. (At busy loads even ruinous maintenance can be
	// amortized by the head keys' hundreds of queries per round — eq. 1
	// is about counts, not probabilities.)
	p := DefaultScenario().WithFQry(1.0 / 7200.0)
	p.Env = 1000
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank != 0 {
		t.Errorf("MaxRank = %d, want 0 under ruinous maintenance at calm load", sol.MaxRank)
	}
}

func TestSolveBusyHeadAmortizesAnyMaintenance(t *testing.T) {
	// The flip side: at one query per peer per 30 s the top key receives
	// ≈133 queries per round; each saves ≈720 broadcast messages, which
	// amortizes even env = 1000 probing. The probT criterion alone would
	// saturate at 1 and wrongly empty the index here.
	p := DefaultScenario()
	p.Env = 1000
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank < 1 || sol.MaxRank > 200 {
		t.Errorf("MaxRank = %d, want a small busy head", sol.MaxRank)
	}
}

func TestSolveFreeIndex(t *testing.T) {
	// With no maintenance and no updates, indexing is free and every key
	// belongs in the index.
	p := DefaultScenario()
	p.Env = 0
	p.FUpd = 0
	sol, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank != p.Keys {
		t.Errorf("MaxRank = %d, want all %d keys when indexing is free", sol.MaxRank, p.Keys)
	}
	if math.Abs(sol.PIndxd-1) > 1e-12 {
		t.Errorf("PIndxd = %v, want 1", sol.PIndxd)
	}
}

func TestSolveValidatesParams(t *testing.T) {
	p := DefaultScenario()
	p.Keys = 0
	if _, err := Solve(p, nil); err == nil {
		t.Error("Solve accepted invalid params")
	}
}

func TestSolveRejectsMismatchedDistribution(t *testing.T) {
	p := DefaultScenario()
	dist := zipf.MustNew(p.Alpha, p.Keys/2)
	if _, err := Solve(p, dist); err == nil {
		t.Error("Solve accepted a distribution over the wrong number of keys")
	}
}

func TestMaxRankForBoundaries(t *testing.T) {
	dist := zipf.MustNew(1.2, 1000)
	qualifies := func(rank int, total, fMin float64) bool {
		return dist.QueryProb(rank, total) >= fMin || total*dist.PMF(rank) >= fMin
	}
	if got := maxRankFor(dist, 100, 0); got != 1000 {
		t.Errorf("fMin=0 should index everything, got %d", got)
	}
	// fMin above 1: probT saturates, but head keys with several expected
	// queries per round still qualify via eq. 1's count criterion.
	if got := maxRankFor(dist, 100, 2); got == 0 {
		t.Error("busy head keys should qualify even at fMin > 1")
	}
	// And with essentially no traffic, nothing qualifies.
	if got := maxRankFor(dist, 0.001, 2); got != 0 {
		t.Errorf("fMin=2 at dead load indexed %d ranks", got)
	}
	// Threshold exactly at rank 1's probT: rank 1 still qualifies.
	pT := dist.QueryProb(1, 100)
	if got := maxRankFor(dist, 100, pT); got < 1 {
		t.Errorf("rank 1 at exact threshold should qualify, got %d", got)
	}
	// Result is the *highest* qualifying rank: everything up to it
	// qualifies, everything above it does not.
	fMin := dist.QueryProb(500, 100)
	r := maxRankFor(dist, 100, fMin)
	if !qualifies(r, 100, fMin) {
		t.Errorf("rank %d does not meet its own threshold", r)
	}
	if r < dist.Keys() && qualifies(r+1, 100, fMin) {
		t.Errorf("rank %d should have been included", r+1)
	}
}

func TestWriteFanoutRaisesFMinAndCost(t *testing.T) {
	// The replica-coherent refresh fan-out charges r−1 extra write legs
	// against every index hit. That must (1) raise the break-even
	// frequency fMin — fewer keys are worth indexing when a hit costs
	// more — (2) raise eq. 17's total at the same TTL, and (3) at the
	// extreme, price indexing out entirely (fMin = +∞).
	base := DefaultScenario()
	fan := base
	fan.WriteFanout = 3
	solBase, err := Solve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	solFan, err := Solve(fan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if solFan.FMin <= solBase.FMin {
		t.Errorf("fMin with fan-out %v not above paper-exact %v", solFan.FMin, solBase.FMin)
	}
	if solFan.MaxRank >= solBase.MaxRank {
		t.Errorf("maxRank with fan-out %d not below paper-exact %d", solFan.MaxRank, solBase.MaxRank)
	}

	ttlBase, err := SolveTTL(base, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	ttlFan, err := SolveTTL(fan, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	if ttlFan.Cost <= ttlBase.Cost {
		t.Errorf("eq. 17 cost with fan-out %v not above paper-exact %v", ttlFan.Cost, ttlBase.Cost)
	}
	// The fan-out applies per hit only: index size and hit probability
	// are TTL properties and must not move.
	if ttlFan.PIndxd != ttlBase.PIndxd || ttlFan.IndexSize != ttlBase.IndexSize {
		t.Errorf("fan-out moved pIndxd/indexSize: %v/%v vs %v/%v",
			ttlFan.PIndxd, ttlFan.IndexSize, ttlBase.PIndxd, ttlBase.IndexSize)
	}

	// Extreme: write legs above the broadcast saving → nothing is worth
	// indexing.
	out := base
	out.WriteFanout = CSUnstr(base) + 1
	solOut, err := Solve(out, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(solOut.FMin, 1) || solOut.MaxRank != 0 {
		t.Errorf("overwhelming fan-out: fMin %v maxRank %d, want +Inf and 0", solOut.FMin, solOut.MaxRank)
	}

	// Malformed fan-outs are rejected.
	bad := base
	bad.WriteFanout = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative WriteFanout accepted")
	}
}
