package model

import "math"

// This file implements the per-message-cost components of Section 3:
// cSUnstr (eq. 6), cSIndx (eq. 7), cRtn (eq. 8), cUpd (eq. 9), cIndKey
// (eq. 10) and the selection-algorithm search cost cSIndx2 (eq. 16).
// All costs are in messages (searches) or messages per second (holding
// costs), exactly as in the paper.

// CSUnstr is eq. 6: the cost of searching the unstructured network,
// numPeers/repl · dup messages. With random replication factor repl a walk
// must visit about numPeers/repl peers to find a copy, and the topology
// duplicates dup of every message.
func CSUnstr(p Params) float64 {
	return float64(p.NumPeers) / float64(p.Repl) * p.Dup
}

// NumActivePeers returns the number of peers that participate in building
// and maintaining the DHT for an index of indexedKeys keys: each key is
// replicated repl times and each peer stores stor entries, capped at the
// total population (the paper: if numPeers > numActivePeers, only
// numActivePeers build the DHT). The result is at least 2 whenever any key
// is indexed — a "DHT" of one peer has no routing and breaks every
// logarithm; the paper implicitly assumes a large index.
func NumActivePeers(p Params, indexedKeys float64) float64 {
	if indexedKeys <= 0 {
		return 0
	}
	nap := math.Ceil(indexedKeys * float64(p.Repl) / float64(p.Stor))
	if nap > float64(p.NumPeers) {
		nap = float64(p.NumPeers)
	}
	if nap < 2 {
		nap = 2
	}
	return nap
}

// CSIndx is eq. 7: the cost of searching the index, ½·log₂(numActivePeers)
// messages in a binary key space. Zero if the index is empty.
func CSIndx(numActivePeers float64) float64 {
	if numActivePeers < 2 {
		return 0
	}
	return 0.5 * math.Log2(numActivePeers)
}

// CRtn is eq. 8: the routing-table maintenance cost per key per round —
// env probe messages per routing entry, log₂(numActivePeers) entries per
// peer, numActivePeers peers, amortized over the indexedKeys keys the DHT
// holds. Zero if the index is empty.
func CRtn(p Params, numActivePeers, indexedKeys float64) float64 {
	if indexedKeys <= 0 || numActivePeers < 2 {
		return 0
	}
	return p.Env * math.Log2(numActivePeers) * numActivePeers / indexedKeys
}

// CUpd is eq. 9: the cost of keeping one key's replicas consistent per
// round — each update (frequency fUpd) costs one index search to reach a
// responsible peer plus repl·dup2 gossip messages through the replica
// subnetwork.
func CUpd(p Params, cSIndx float64) float64 {
	return (cSIndx + float64(p.Repl)*p.Dup2) * p.FUpd
}

// CIndKey is eq. 10: the total cost of keeping one key in the index for one
// round, cRtn + cUpd.
func CIndKey(p Params, numActivePeers, indexedKeys float64) float64 {
	cs := CSIndx(numActivePeers)
	return CRtn(p, numActivePeers, indexedKeys) + CUpd(p, cs)
}

// CSIndx2 is eq. 16: the index search cost under the selection algorithm.
// Because TTL expiry leaves replicas poorly synchronized, every index search
// additionally floods the replica subnetwork: cSIndx + repl·dup2.
func CSIndx2(p Params, numActivePeers float64) float64 {
	return CSIndx(numActivePeers) + float64(p.Repl)*p.Dup2
}
