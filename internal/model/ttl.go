package model

import (
	"fmt"
	"math"

	"pdht/internal/zipf"
)

// This file implements the Section-5 model of the decentralized selection
// algorithm: keys enter the index on a query miss and expire after keyTtl
// rounds without a query. Equations 14 (hit probability), 15 (expected index
// size), 16 (degraded index search cost) and 17 (total cost).

// TTLSolution is the resolved selection-algorithm model at one operating
// point.
type TTLSolution struct {
	Params Params
	// KeyTtl is the expiration time in rounds that peers attach to
	// inserted keys.
	KeyTtl float64
	// PIndxd is eq. 14: the probability that a query finds its key in the
	// index, i.e. that the key was queried at least once in the last
	// keyTtl rounds.
	PIndxd float64
	// IndexSize is eq. 15: the expected number of keys in the index.
	IndexSize float64
	// NumActivePeers, CSIndx2 and CRtn are the cost components evaluated
	// at IndexSize; CSIndx2 is eq. 16.
	NumActivePeers float64
	CSIndx2        float64
	CRtn           float64
	// Cost is eq. 17: total messages per second.
	Cost float64
}

// probInTTL returns 1 − (1 − probT)^keyTtl: the probability that a key with
// per-round query probability probT was queried at least once in the last
// keyTtl rounds and therefore sits in the index. Computed via expm1/log1p so
// deep-tail keys (probT ~ 1e-9) with large TTLs don't collapse to 0 or 1.
func probInTTL(probT, keyTtl float64) float64 {
	if probT <= 0 || keyTtl <= 0 {
		return 0
	}
	if probT >= 1 {
		return 1
	}
	return -math.Expm1(keyTtl * math.Log1p(-probT))
}

// SolveTTL evaluates the selection-algorithm model with the given keyTtl.
// dist may be nil (constructed from p), as in Solve.
//
// Under the selection algorithm proactive updates are unnecessary — a stale
// key simply expires and is re-fetched on the next miss — so the holding
// cost is cRtn alone, and every index search pays the replica-subnet flood
// of eq. 16. A miss costs a failed index search, a broadcast, and a
// re-insert: cSIndx2 + cSUnstr + cSIndx2 (eq. 17).
func SolveTTL(p Params, dist *zipf.Distribution, keyTtl float64) (TTLSolution, error) {
	if err := p.Validate(); err != nil {
		return TTLSolution{}, err
	}
	if keyTtl < 0 || math.IsNaN(keyTtl) {
		return TTLSolution{}, fmt.Errorf("model: keyTtl = %v must be non-negative", keyTtl)
	}
	if dist == nil {
		var err error
		dist, err = zipf.New(p.Alpha, p.Keys)
		if err != nil {
			return TTLSolution{}, err
		}
	}
	if dist.Keys() != p.Keys {
		return TTLSolution{}, fmt.Errorf("model: distribution has %d keys, params have %d", dist.Keys(), p.Keys)
	}

	q := p.TotalQueries()
	var pIndxd, indexSize float64
	for rank := 1; rank <= p.Keys; rank++ {
		in := probInTTL(dist.QueryProb(rank, q), keyTtl)
		indexSize += in
		pIndxd += in * dist.PMF(rank)
	}

	nap := NumActivePeers(p, indexSize)
	cSIndx2 := CSIndx2(p, nap)
	cRtn := CRtn(p, nap, indexSize)
	cSUnstr := CSUnstr(p)

	// A hit pays the degraded index search and, in a deployment that fans
	// the reset-on-hit refresh out to the whole replica set, WriteFanout
	// extra write legs (zero in the paper-exact model). A miss pays a
	// failed search, a broadcast, and a re-insert (priced as a second
	// index search: route plus the replica-set write flood).
	// Eq. 17 plus the distributed top-k traffic term: every peer issues
	// TopKRound top-k queries per round and each costs TopKProbe probe
	// legs (zero in the paper-exact model).
	cost := indexSize*cRtn +
		pIndxd*q*(cSIndx2+p.WriteFanout) +
		(1-pIndxd)*q*(cSIndx2+cSUnstr+cSIndx2) +
		float64(p.NumPeers)*p.TopKRound*p.TopKProbe

	return TTLSolution{
		Params:         p,
		KeyTtl:         keyTtl,
		PIndxd:         pIndxd,
		IndexSize:      indexSize,
		NumActivePeers: nap,
		CSIndx2:        cSIndx2,
		CRtn:           cRtn,
		Cost:           cost,
	}, nil
}

// IdealKeyTtl returns the paper's choice of expiration time, keyTtl = 1/fMin
// (§5.1, reason I), computed from the ideal-partial solution at the same
// operating point. If nothing is worth indexing (fMin = +Inf) the TTL is 0:
// keys should not linger in the index at all.
func IdealKeyTtl(sol Solution) float64 {
	if math.IsInf(sol.FMin, 1) || sol.FMin <= 0 {
		return 0
	}
	return 1 / sol.FMin
}

// SolveTTLAuto solves the ideal-partial fixed point to obtain
// keyTtl = 1/fMin and then evaluates the selection-algorithm model with it.
// It returns both solutions.
func SolveTTLAuto(p Params, dist *zipf.Distribution) (Solution, TTLSolution, error) {
	sol, err := Solve(p, dist)
	if err != nil {
		return Solution{}, TTLSolution{}, err
	}
	ttl, err := SolveTTL(p, dist, IdealKeyTtl(sol))
	if err != nil {
		return Solution{}, TTLSolution{}, err
	}
	return sol, ttl, nil
}
