package gossip

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"pdht/internal/obs"
	"pdht/internal/transport"
)

// fakeNet wires Services directly to each other's HandleMessage, with
// whole-node and single-direction link failures injectable — the failure
// detector's test substrate, no transport involved.
type fakeNet struct {
	mu       sync.Mutex
	services map[string]*Service
	down     map[string]bool // node crashed
	cut      map[string]bool // "from>to" one-way link severed
}

func newFakeNet() *fakeNet {
	return &fakeNet{
		services: make(map[string]*Service),
		down:     make(map[string]bool),
		cut:      make(map[string]bool),
	}
}

func (f *fakeNet) caller(from string) Caller {
	return func(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
		f.mu.Lock()
		svc, ok := f.services[addr]
		unreachable := !ok || f.down[addr] || f.cut[from+">"+addr]
		f.mu.Unlock()
		if unreachable {
			return transport.Gossip{}, false, errors.New("unreachable")
		}
		r, rok := svc.HandleMessage(msg)
		return r, rok, nil
	}
}

// testConfig is fast enough that convergence and suspicion are observable
// within a test run: 10ms protocol period, 40ms suspicion window.
func testConfig(addr string) Config {
	return Config{
		Addr:             addr,
		ProbeInterval:    10 * time.Millisecond,
		SuspicionTimeout: 40 * time.Millisecond,
		SyncInterval:     20 * time.Millisecond,
	}
}

func (f *fakeNet) add(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg, f.caller(cfg.Addr))
	if err != nil {
		t.Fatal(err)
	}
	f.mu.Lock()
	f.services[cfg.Addr] = s
	f.mu.Unlock()
	return s
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func sameMembers(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestJoinAndConverge(t *testing.T) {
	net := newFakeNet()
	a := net.add(t, testConfig("a"))
	b := net.add(t, testConfig("b"))
	c := net.add(t, testConfig("c"))
	for _, s := range []*Service{a, b, c} {
		s.Start()
		defer s.Stop()
	}
	if err := b.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := []string{"a", "b", "c"}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), full) && sameMembers(b.Alive(), full) && sameMembers(c.Alive(), full)
	}, "3-way convergence")
	// b never talked to c directly; gossip alone delivered each to the
	// other, and joining bumped everyone's view version past the initial.
	if a.Version() < 2 || b.Version() < 2 || c.Version() < 2 {
		t.Fatalf("versions after convergence: a=%d b=%d c=%d, want ≥2 each",
			a.Version(), b.Version(), c.Version())
	}
}

func TestJoinUnreachableSeedFails(t *testing.T) {
	net := newFakeNet()
	a := net.add(t, testConfig("a"))
	if err := a.Join(context.Background(), "ghost"); err == nil {
		t.Fatal("join of a nonexistent seed succeeded")
	}
}

// TestDeadPeerDetectedAndEvicted is the SWIM core: a silently crashed
// member is suspected, confirmed dead within the suspicion timeout, and
// leaves every live view — with OnChange reporting the shrunken alive set.
func TestDeadPeerDetectedAndEvicted(t *testing.T) {
	net := newFakeNet()
	var mu sync.Mutex
	var lastAlive []string
	cfgA := testConfig("a")
	cfgA.OnChange = func(alive []string, version uint64) {
		mu.Lock()
		lastAlive = alive
		mu.Unlock()
	}
	a := net.add(t, cfgA)
	b := net.add(t, testConfig("b"))
	c := net.add(t, testConfig("c"))
	for _, s := range []*Service{a, b, c} {
		s.Start()
		defer s.Stop()
	}
	if err := b.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := []string{"a", "b", "c"}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), full) && sameMembers(b.Alive(), full) && sameMembers(c.Alive(), full)
	}, "3-way convergence")

	net.mu.Lock()
	net.down["c"] = true
	net.mu.Unlock()
	c.Stop()
	want := []string{"a", "b"}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), want) && sameMembers(b.Alive(), want)
	}, "dead peer evicted from both live views")

	for _, m := range a.Snapshot() {
		if m.Addr == "c" && m.Status != StatusDead {
			t.Fatalf("c's status at a = %v, want dead", m.Status)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !sameMembers(lastAlive, want) {
		t.Fatalf("last OnChange alive set = %v, want %v", lastAlive, want)
	}
}

// TestRestartRefutation is the crash-recovery path: a member everyone
// declared dead rejoins at the same address, learns of its own death from
// the seed's full state, refutes it with a higher incarnation, and returns
// to every live view.
func TestRestartRefutation(t *testing.T) {
	net := newFakeNet()
	a := net.add(t, testConfig("a"))
	b := net.add(t, testConfig("b"))
	c := net.add(t, testConfig("c"))
	for _, s := range []*Service{a, b} {
		s.Start()
		defer s.Stop()
	}
	c.Start()
	if err := b.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := []string{"a", "b", "c"}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), full) && sameMembers(b.Alive(), full)
	}, "3-way convergence")

	net.mu.Lock()
	net.down["c"] = true
	net.mu.Unlock()
	c.Stop()
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), []string{"a", "b"})
	}, "crash detected")

	// Restart: a fresh service at the same address, incarnation zero.
	c2 := net.add(t, testConfig("c"))
	net.mu.Lock()
	net.down["c"] = false
	net.mu.Unlock()
	c2.Start()
	defer c2.Stop()
	if err := c2.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), full) && sameMembers(b.Alive(), full) && sameMembers(c2.Alive(), full)
	}, "restarted member resurrected in every view")

	// The refutation must have pushed the incarnation past the one it
	// died with — that is what beats the propagated death certificate.
	for _, m := range c2.Snapshot() {
		if m.Addr == "c" && m.Incarnation == 0 {
			t.Fatal("restarted member still at incarnation 0; refutation never happened")
		}
	}
}

// TestIndirectProbeSavesAsymmetricFailure cuts only the a→c link: a's
// direct probes of c fail forever, but the ping-req detour through b keeps
// answering, so c must never be confirmed dead.
func TestIndirectProbeSavesAsymmetricFailure(t *testing.T) {
	net := newFakeNet()
	a := net.add(t, testConfig("a"))
	b := net.add(t, testConfig("b"))
	c := net.add(t, testConfig("c"))
	for _, s := range []*Service{a, b, c} {
		s.Start()
		defer s.Stop()
	}
	if err := b.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := []string{"a", "b", "c"}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), full) && sameMembers(b.Alive(), full) && sameMembers(c.Alive(), full)
	}, "3-way convergence")

	net.mu.Lock()
	net.cut["a>c"] = true
	net.mu.Unlock()
	// Let many protocol periods pass — enough that, without indirect
	// probing, suspicion would long since have confirmed death.
	time.Sleep(20 * testConfig("a").ProbeInterval)
	if !sameMembers(a.Alive(), full) {
		t.Fatalf("alive set at a = %v after asymmetric cut, want %v", a.Alive(), full)
	}
}

// TestMergePrecedence pins the SWIM ordering rules the whole protocol
// rests on: incarnation first, severity second, and self-claims refuted.
func TestMergePrecedence(t *testing.T) {
	deadCaller := func(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
		return transport.Gossip{}, false, errors.New("no network in this test")
	}
	alive := func(addr string, inc uint64) transport.PeerState {
		return transport.PeerState{Addr: addr, Status: uint8(StatusAlive), Incarnation: inc}
	}
	dead := func(addr string, inc uint64) transport.PeerState {
		return transport.PeerState{Addr: addr, Status: uint8(StatusDead), Incarnation: inc}
	}
	statusOf := func(s *Service, addr string) (Status, uint64) {
		for _, m := range s.Snapshot() {
			if m.Addr == addr {
				return m.Status, m.Incarnation
			}
		}
		t.Fatalf("member %s missing from snapshot", addr)
		return 0, 0
	}

	s, err := New(Config{Addr: "self"}, deadCaller)
	if err != nil {
		t.Fatal(err)
	}

	// A new member arrives alive; the view version moves.
	v0 := s.Version()
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{alive("x", 3)}})
	if st, _ := statusOf(s, "x"); st != StatusAlive {
		t.Fatalf("x = %v, want alive", st)
	}
	if s.Version() <= v0 {
		t.Fatal("new alive member did not bump the version")
	}

	// Equal incarnation: the more severe claim wins.
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{dead("x", 3)}})
	if st, _ := statusOf(s, "x"); st != StatusDead {
		t.Fatalf("x = %v after equal-incarnation death, want dead", st)
	}

	// A stale alive claim (same incarnation it died with) must NOT
	// resurrect — that is the rank-shift poison SWIM incarnations exist
	// to block.
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{alive("x", 3)}})
	if st, _ := statusOf(s, "x"); st != StatusDead {
		t.Fatal("stale alive claim resurrected a dead member")
	}

	// A higher incarnation does resurrect.
	v1 := s.Version()
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{alive("x", 4)}})
	if st, inc := statusOf(s, "x"); st != StatusAlive || inc != 4 {
		t.Fatalf("x = %v inc %d after refutation, want alive inc 4", st, inc)
	}
	if s.Version() <= v1 {
		t.Fatal("resurrection did not bump the version")
	}

	// A death claim about self is refuted on the spot: our incarnation
	// jumps past the claim and the refutation joins the gossip queue.
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{dead("self", 7)}})
	if st, inc := statusOf(s, "self"); st != StatusAlive || inc != 8 {
		t.Fatalf("self = %v inc %d after death claim, want alive inc 8", st, inc)
	}
	s.mu.Lock()
	refuted := false
	for _, q := range s.queue {
		if q.state.Addr == "self" && Status(q.state.Status) == StatusAlive && q.state.Incarnation == 8 {
			refuted = true
		}
	}
	s.mu.Unlock()
	if !refuted {
		t.Fatal("refutation of own death never entered the piggyback queue")
	}
}

// TestPiggybackBatching pins the dissemination mechanics: batches respect
// MaxPiggyback, retransmissions are finite, and a newer claim about an
// address supersedes the queued older one.
func TestPiggybackBatching(t *testing.T) {
	s, err := New(Config{Addr: "self", MaxPiggyback: 4, RetransmitMult: 2},
		func(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
			return transport.Gossip{}, false, errors.New("unused")
		})
	if err != nil {
		t.Fatal(err)
	}
	var updates []transport.PeerState
	for i := 0; i < 10; i++ {
		updates = append(updates, transport.PeerState{
			Addr: fmt.Sprintf("m%d", i), Status: uint8(StatusAlive), Incarnation: 1,
		})
	}
	s.MergeState(transport.Gossip{Updates: updates})

	s.mu.Lock()
	batch := s.takePiggybackLocked()
	s.mu.Unlock()
	if len(batch) != 4 {
		t.Fatalf("batch size %d, want MaxPiggyback=4", len(batch))
	}

	// Superseding: re-announce m0 dead at a higher incarnation; exactly
	// one queued claim about m0 must remain, the new one.
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{
		{Addr: "m0", Status: uint8(StatusDead), Incarnation: 2},
	}})
	s.mu.Lock()
	claims := 0
	for _, q := range s.queue {
		if q.state.Addr == "m0" {
			claims++
			if Status(q.state.Status) != StatusDead || q.state.Incarnation != 2 {
				s.mu.Unlock()
				t.Fatalf("queued claim about m0 = %+v, want the superseding death", q.state)
			}
		}
	}
	s.mu.Unlock()
	if claims != 1 {
		t.Fatalf("%d queued claims about m0, want exactly 1", claims)
	}

	// The queue must drain: every update has a finite transmission
	// budget, so repeated taking empties it.
	for i := 0; i < 100; i++ {
		s.mu.Lock()
		b := s.takePiggybackLocked()
		empty := len(s.queue) == 0
		s.mu.Unlock()
		if len(b) == 0 && empty {
			return
		}
	}
	t.Fatal("piggyback queue never drained")
}

// TestDeadMemberForgottenAfterRetention bounds the table: a confirmed-dead
// member (think: an exited one-shot querier) must leave the table once
// DeadRetention lapses, or a long-lived node accumulates one permanent
// dead row — shipped in every anti-entropy payload — per visitor.
func TestDeadMemberForgottenAfterRetention(t *testing.T) {
	net := newFakeNet()
	cfg := testConfig("a")
	cfg.DeadRetention = 50 * time.Millisecond
	a := net.add(t, cfg)
	b := net.add(t, testConfig("b"))
	c := net.add(t, testConfig("c"))
	for _, s := range []*Service{a, b} {
		s.Start()
		defer s.Stop()
	}
	c.Start()
	if err := b.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := []string{"a", "b", "c"}
	waitFor(t, 5*time.Second, func() bool { return sameMembers(a.Alive(), full) }, "3-way convergence")

	net.mu.Lock()
	net.down["c"] = true
	net.mu.Unlock()
	c.Stop()
	waitFor(t, 5*time.Second, func() bool { return sameMembers(a.Alive(), []string{"a", "b"}) }, "death confirmed")

	// The dead row must linger (resurrection guard), then vanish.
	waitFor(t, 5*time.Second, func() bool {
		for _, m := range a.Snapshot() {
			if m.Addr == "c" {
				return false
			}
		}
		return true
	}, "dead member forgotten after retention")
	// Forgetting must not have disturbed the view.
	if !sameMembers(a.Alive(), []string{"a", "b"}) {
		t.Fatalf("alive set at a = %v after purge, want [a b]", a.Alive())
	}
}

// TestStopIsIdempotent guards the shutdown path.
func TestStopIsIdempotent(t *testing.T) {
	net := newFakeNet()
	s := net.add(t, testConfig("a"))
	s.Start()
	s.Stop()
	s.Stop()
}

// TestRefutationBeatsAsymmetricLoss pins the liveness bound the chaos
// harness's convergence math rests on: a member that can call out but
// cannot be called — one-way loss, the nastiest failure-detector input —
// must refute every suspicion of it with an incarnation bump BEFORE the
// suspicion timeout expires, and therefore never be confirmed dead. The
// refutation channel is the member's own outbound traffic: its pings carry
// the piggybacked alive-at-higher-incarnation claim, so one outbound
// protocol period per suspicion window (here 4 periods per window) is the
// pinned requirement.
func TestRefutationBeatsAsymmetricLoss(t *testing.T) {
	net := newFakeNet()
	a := net.add(t, testConfig("a"))
	b := net.add(t, testConfig("b"))
	c := net.add(t, testConfig("c"))
	reg := obs.NewRegistry()
	b.RegisterMetrics(reg)
	for _, s := range []*Service{a, b, c} {
		s.Start()
		defer s.Stop()
	}
	if err := b.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	full := []string{"a", "b", "c"}
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(a.Alive(), full) && sameMembers(b.Alive(), full) && sameMembers(c.Alive(), full)
	}, "3-way convergence")

	// b goes inbound-deaf from EVERYONE: direct probes and indirect
	// ping-reqs both fail, so suspicion is continuously re-raised and
	// only b's own outbound refutations can answer it.
	net.mu.Lock()
	net.cut["a>b"] = true
	net.cut["c>b"] = true
	net.mu.Unlock()

	// Watch for 30 suspicion windows: b may oscillate alive↔suspect, but
	// must never be confirmed dead nor leave an alive set.
	cfg := testConfig("a")
	deadline := time.Now().Add(30 * cfg.SuspicionTimeout)
	for time.Now().Before(deadline) {
		for _, s := range []*Service{a, c} {
			for _, m := range s.Snapshot() {
				if m.Addr == "b" && m.Status == StatusDead {
					t.Fatalf("%s confirmed b dead despite live outbound refutations", s.cfg.Addr)
				}
			}
			if !sameMembers(s.Alive(), full) {
				t.Fatalf("alive set at %s = %v under one-way loss, want %v", s.cfg.Addr, s.Alive(), full)
			}
		}
		time.Sleep(cfg.ProbeInterval)
	}
	if got := b.metrics.refutations.Value(); got == 0 {
		t.Fatal("b was suspected for 30 windows yet never refuted — the bump path never fired")
	}
	// The incarnation must have advanced past its initial value and the
	// refuted claims must have propagated back to the suspecting side.
	for _, m := range a.Snapshot() {
		if m.Addr == "b" && m.Incarnation == 0 {
			t.Fatal("a never saw a refuted (bumped) incarnation for b")
		}
	}
}

// TestDeadSyncHealsPartition drives the full partition lifecycle the chaos
// harness measures: a two-sided cut lets each half confirm the other dead;
// after the cut lifts, the only crossing traffic is the dead-member
// anti-entropy sync (Config.DeadSyncFraction), whose exchange triggers the
// target's self-refutation and carries the bumped incarnation straight
// back — both halves must re-merge to the full alive set.
func TestDeadSyncHealsPartition(t *testing.T) {
	net := newFakeNet()
	addrs := []string{"a", "b", "c", "d"}
	var svcs []*Service
	for _, addr := range addrs {
		svcs = append(svcs, net.add(t, testConfig(addr)))
	}
	for _, s := range svcs {
		s.Start()
		defer s.Stop()
	}
	for _, s := range svcs[1:] {
		if err := s.Join(context.Background(), "a"); err != nil {
			t.Fatal(err)
		}
	}
	allAlive := func() bool {
		for _, s := range svcs {
			if !sameMembers(s.Alive(), addrs) {
				return false
			}
		}
		return true
	}
	waitFor(t, 5*time.Second, allAlive, "4-way convergence")

	// Partition {a,b} | {c,d}: every cross link cut in both directions.
	setCut := func(on bool) {
		net.mu.Lock()
		for _, x := range []string{"a", "b"} {
			for _, y := range []string{"c", "d"} {
				if on {
					net.cut[x+">"+y] = true
					net.cut[y+">"+x] = true
				} else {
					delete(net.cut, x+">"+y)
					delete(net.cut, y+">"+x)
				}
			}
		}
		net.mu.Unlock()
	}
	setCut(true)
	waitFor(t, 5*time.Second, func() bool {
		return sameMembers(svcs[0].Alive(), []string{"a", "b"}) &&
			sameMembers(svcs[2].Alive(), []string{"c", "d"})
	}, "both sides confirming the other half dead")

	// Heal while the dead entries are still retained: only dead-sync can
	// cross the former cut, and it must re-merge both sides.
	setCut(false)
	waitFor(t, 10*time.Second, allAlive, "post-heal re-merge via dead-member anti-entropy")
}
