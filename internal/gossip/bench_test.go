package gossip

import (
	"context"
	"fmt"
	"testing"

	"pdht/internal/transport"
)

// BenchmarkGossipRound measures one protocol period — piggyback selection,
// the direct probe, and the reply merge — against an instantly-acking
// peer, over growing membership tables. This is the steady-state cost the
// membership layer adds per ProbeInterval, the baseline future protocol
// changes are compared against.
func BenchmarkGossipRound(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			ack := func(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
				return transport.Gossip{Kind: transport.GossipAck, From: addr}, true, nil
			}
			s, err := New(Config{Addr: "self"}, ack)
			if err != nil {
				b.Fatal(err)
			}
			updates := make([]transport.PeerState, 0, n)
			for i := 0; i < n; i++ {
				updates = append(updates, transport.PeerState{
					Addr: fmt.Sprintf("m%d", i), Status: uint8(StatusAlive), Incarnation: 1,
				})
			}
			s.merge(updates)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.probeRound()
			}
		})
	}
}
