// Package gossip is the decentralized membership layer of the live node
// subsystem: a SWIM-style failure detector (Das et al.) with the
// dissemination style of memberlist — periodic direct pings, indirect
// ping-req probing through k helpers, suspicion with incarnation numbers,
// membership deltas piggybacked on every protocol message, and a periodic
// full-state anti-entropy exchange that bounds convergence time even when
// piggyback traffic is sparse.
//
// The package owns no sockets: it speaks transport.Gossip values through an
// injected Caller and answers inbound messages via HandleMessage, so the
// same state machine runs over the in-memory loopback transport and TCP.
// The node layer (internal/node) wires it to the OpGossip RPC.
//
// Confirmed membership changes — a member joining, a suspect confirmed
// dead, a dead member refuting with a higher incarnation — bump a
// monotonically increasing view version and fire the OnChange callback
// with the new alive set. Suspicion alone does not: a suspect stays in the
// view (and keeps being routed to) until the suspicion timeout confirms
// it, exactly the grace period that lets a slow-but-live peer refute.
package gossip

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"pdht/internal/transport"
)

// Status is a member's health in the protocol's three-state machine.
type Status uint8

const (
	// StatusAlive is the default: the member answers probes, or someone
	// who can reach it says so.
	StatusAlive Status = iota
	// StatusSuspect means a probe round failed directly and indirectly.
	// The member stays in the view; it has SuspicionTimeout to refute.
	StatusSuspect
	// StatusDead is a confirmed departure: the suspicion timeout expired
	// (or a peer's did). Only a higher incarnation resurrects the member.
	StatusDead
)

// String returns the status label used in reports.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Member is one row of the membership table.
type Member struct {
	Addr        string
	Status      Status
	Incarnation uint64
}

// Caller sends one gossip message to addr and returns the peer's reply.
// ok mirrors Response.OK (an indirect probe's verdict); err is any
// transport- or application-level failure, treated as "peer did not
// answer". Callers must be safe for concurrent use.
type Caller func(ctx context.Context, addr string, msg transport.Gossip) (reply transport.Gossip, ok bool, err error)

// Config parameterizes one membership service.
type Config struct {
	// Addr is this node's own address — its identity in the table.
	Addr string
	// ProbeInterval is the SWIM protocol period. Default 1s.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each direct or indirect probe RPC.
	// Default ProbeInterval/2.
	ProbeTimeout time.Duration
	// IndirectProbes is k, the number of helpers asked to ping-req a
	// peer that failed its direct probe. Default 2.
	IndirectProbes int
	// SuspicionTimeout is how long a suspect may stay silent before it
	// is confirmed dead. Default 4×ProbeInterval.
	SuspicionTimeout time.Duration
	// SyncInterval is the anti-entropy period: every SyncInterval the
	// service exchanges full membership tables with one random live
	// member. Default 4×ProbeInterval.
	SyncInterval time.Duration
	// RetransmitMult scales how often each queued update is piggybacked
	// before it is dropped: RetransmitMult × ⌈log₂(n+1)⌉ transmissions.
	// Default 4.
	RetransmitMult int
	// DeadRetention is how long a confirmed-dead member stays in the
	// table before it is forgotten. Retention blocks resurrection by
	// stale alive claims still circulating; forgetting bounds the table
	// (and every anti-entropy payload) in a cluster visited by
	// short-lived members, which would otherwise grow one permanent
	// dead row per visitor. Default 20×SyncInterval — far beyond any
	// dissemination tail. Forgetting changes no view: the member was
	// already out of the alive set.
	DeadRetention time.Duration
	// MaxPiggyback caps the updates attached to one message. Default 8.
	MaxPiggyback int
	// DeadSyncFraction is the probability that one anti-entropy round
	// targets a random confirmed-dead (but still retained) member instead
	// of a live one — memberlist's "gossip to the dead". Without it a
	// two-sided partition deadlocks on heal: both sides hold each other
	// dead, dead members are never probed or synced, and no message ever
	// crosses the healed link again. One successful dead-sync exchange
	// resurrects the target (it refutes the death claim in our payload by
	// bumping its incarnation, and its reply already carries the bump),
	// after which normal dissemination re-merges the halves. Default
	// 0.125; negative disables.
	DeadSyncFraction float64
	// OnChange fires after every confirmed membership change with the
	// new alive set (sorted, self included) and the view version that
	// produced it. It is called without internal locks held and may fire
	// concurrently from the protocol loop and inbound handlers, so
	// notifications can arrive out of order: receivers must use the
	// version to discard stale ones.
	OnChange func(alive []string, version uint64)
	// Seed seeds the service's private rng (probe-order shuffling,
	// helper selection). Zero derives a seed from Addr.
	Seed uint64
}

func (c *Config) setDefaults() {
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = c.ProbeInterval / 2
	}
	if c.IndirectProbes == 0 {
		c.IndirectProbes = 2
	}
	if c.SuspicionTimeout == 0 {
		c.SuspicionTimeout = 4 * c.ProbeInterval
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 4 * c.ProbeInterval
	}
	if c.RetransmitMult == 0 {
		c.RetransmitMult = 4
	}
	if c.DeadRetention == 0 {
		c.DeadRetention = 20 * c.SyncInterval
	}
	if c.MaxPiggyback == 0 {
		c.MaxPiggyback = 8
	}
	if c.DeadSyncFraction == 0 {
		c.DeadSyncFraction = 0.125
	}
	if c.Seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(c.Addr))
		c.Seed = h.Sum64() | 1
	}
}

func (c Config) validate() error {
	switch {
	case c.Addr == "":
		return fmt.Errorf("gossip: empty Addr")
	case c.ProbeInterval < 0 || c.ProbeTimeout < 0 || c.SuspicionTimeout < 0 || c.SyncInterval < 0:
		return fmt.Errorf("gossip: negative interval")
	case c.IndirectProbes < 0:
		return fmt.Errorf("gossip: negative IndirectProbes")
	}
	return nil
}

// memberState is the mutable side of one table row.
type memberState struct {
	status      Status
	incarnation uint64
	// since is when the current status was entered — the suspicion
	// clock while suspect, the retention clock while dead.
	since time.Time
}

// queuedUpdate is one membership delta awaiting piggyback dissemination.
type queuedUpdate struct {
	state transport.PeerState
	left  int // transmissions remaining
}

// Service is one node's membership state machine plus its protocol loop.
type Service struct {
	cfg  Config
	call Caller

	mu      sync.Mutex
	members map[string]*memberState // every address ever heard of, incl. self
	queue   []*queuedUpdate
	version uint64
	ring    []string // shuffled probe order over non-dead, non-self members
	ringIdx int
	rng     *rand.Rand

	stop     chan struct{}
	done     sync.WaitGroup
	stopOnce sync.Once

	// metrics is set by RegisterMetrics before Start, nil otherwise.
	metrics *metrics
}

// New builds a stopped service; Start launches the protocol loop. The
// service immediately knows exactly one member: itself, alive, incarnation
// zero, at view version 1.
func New(cfg Config, call Caller) (*Service, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if call == nil {
		return nil, fmt.Errorf("gossip: nil Caller")
	}
	s := &Service{
		cfg:     cfg,
		call:    call,
		members: map[string]*memberState{cfg.Addr: {status: StatusAlive}},
		version: 1,
		rng:     rand.New(rand.NewPCG(cfg.Seed, 0x2545f4914f6cdd1d)),
		stop:    make(chan struct{}),
	}
	return s, nil
}

// Start launches the probe and anti-entropy loops.
func (s *Service) Start() {
	s.done.Add(1)
	go s.loop()
}

// Stop halts the protocol loops and waits for them. Idempotent; inbound
// HandleMessage calls remain safe after Stop (the table just stops probing).
func (s *Service) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.done.Wait()
}

// Join bootstraps membership from a seed peer: one full-state anti-entropy
// exchange. The seed learns this node; this node adopts everything the
// seed knows (including, after a crash-restart, its own death — which it
// refutes with a higher incarnation on the spot).
func (s *Service) Join(ctx context.Context, seed string) error {
	s.mu.Lock()
	msg := transport.Gossip{
		Kind: transport.GossipSync, From: s.cfg.Addr,
		Full: true, Updates: s.fullStateLocked(),
	}
	s.mu.Unlock()
	reply, _, err := s.call(ctx, seed, msg)
	if err != nil {
		return fmt.Errorf("gossip: join %s: %w", seed, err)
	}
	s.merge(reply.Updates)
	return nil
}

// HandleMessage answers one inbound gossip message — the server side of
// the OpGossip RPC. ok is the Response.OK verdict (always true except for
// a failed indirect probe).
func (s *Service) HandleMessage(msg transport.Gossip) (reply transport.Gossip, ok bool) {
	// Any message proves its sender exists; an unknown sender enters the
	// table alive at incarnation 0 (its own updates raise that if stale).
	if msg.From != "" && msg.From != s.cfg.Addr {
		s.merge(append([]transport.PeerState{
			{Addr: msg.From, Status: uint8(StatusAlive)},
		}, msg.Updates...))
	} else {
		s.merge(msg.Updates)
	}

	switch msg.Kind {
	case transport.GossipPing:
		return s.ackWithPiggyback(), true
	case transport.GossipPingReq:
		if msg.Target == "" || msg.Target == s.cfg.Addr {
			return s.ackWithPiggyback(), msg.Target == s.cfg.Addr
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
		defer cancel()
		s.mu.Lock()
		ping := transport.Gossip{Kind: transport.GossipPing, From: s.cfg.Addr, Updates: s.takePiggybackLocked()}
		s.mu.Unlock()
		r, rok, err := s.call(ctx, msg.Target, ping)
		if err == nil && rok {
			s.merge(r.Updates)
			return s.ackWithPiggyback(), true
		}
		return s.ackWithPiggyback(), false
	case transport.GossipSync:
		s.mu.Lock()
		reply = transport.Gossip{
			Kind: transport.GossipAck, From: s.cfg.Addr,
			Full: true, Updates: s.fullStateLocked(),
		}
		s.mu.Unlock()
		return reply, true
	default:
		return s.ackWithPiggyback(), true
	}
}

// MergeState folds a remote membership payload into the table — the
// convergence accelerator behind stale-view responses.
func (s *Service) MergeState(msg transport.Gossip) {
	s.merge(msg.Updates)
}

// State returns the full membership table as a wire payload — what a
// stale-view response carries back to the out-of-date caller.
func (s *Service) State() transport.Gossip {
	s.mu.Lock()
	defer s.mu.Unlock()
	return transport.Gossip{
		Kind: transport.GossipSync, From: s.cfg.Addr,
		Full: true, Updates: s.fullStateLocked(),
	}
}

// Alive returns the sorted addresses of all non-dead members, self
// included — the membership list views are built from. Suspects count as
// alive: they stay routable until confirmed dead.
func (s *Service) Alive() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aliveLocked()
}

// Version returns the current view version. It bumps exactly on confirmed
// membership changes, never on suspicion alone.
func (s *Service) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Snapshot returns the full table sorted by address — the status view the
// CLI renders.
func (s *Service) Snapshot() []Member {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Member, 0, len(s.members))
	for addr, m := range s.members {
		out = append(out, Member{Addr: addr, Status: m.status, Incarnation: m.incarnation})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// ---- protocol loops ----

func (s *Service) loop() {
	defer s.done.Done()
	probe := time.NewTicker(s.cfg.ProbeInterval)
	defer probe.Stop()
	sync := time.NewTicker(s.cfg.SyncInterval)
	defer sync.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-probe.C:
			s.expireSuspects()
			s.probeRound()
		case <-sync.C:
			s.syncRound()
		}
	}
}

// probeRound runs one SWIM protocol period: direct ping of the next member
// in the shuffled probe order, indirect ping-req through k helpers on
// failure, suspicion when both fail.
func (s *Service) probeRound() {
	s.mu.Lock()
	target := s.nextTargetLocked()
	if target == "" {
		s.mu.Unlock()
		return
	}
	ping := transport.Gossip{Kind: transport.GossipPing, From: s.cfg.Addr, Updates: s.takePiggybackLocked()}
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	pingStart := time.Now()
	reply, ok, err := s.call(ctx, target, ping)
	cancel()
	if err == nil && ok {
		if s.metrics != nil {
			s.metrics.probeRTT.Observe(time.Since(pingStart))
		}
		s.merge(reply.Updates)
		return
	}
	if s.metrics != nil {
		s.metrics.probeFailures.Inc()
	}

	// Indirect probes: ask k other live members to ping the target. One
	// positive verdict clears it; silence from everyone makes it suspect.
	s.mu.Lock()
	helpers := s.pickHelpersLocked(target, s.cfg.IndirectProbes)
	req := transport.Gossip{
		Kind: transport.GossipPingReq, From: s.cfg.Addr,
		Target: target, Updates: s.takePiggybackLocked(),
	}
	s.mu.Unlock()
	acked := false
	var wg sync.WaitGroup
	verdicts := make(chan bool, len(helpers))
	for _, h := range helpers {
		wg.Add(1)
		go func(h string) {
			defer wg.Done()
			// An indirect probe crosses two hops; give it both budgets.
			ctx, cancel := context.WithTimeout(context.Background(), 2*s.cfg.ProbeTimeout)
			defer cancel()
			r, rok, err := s.call(ctx, h, req)
			if err == nil {
				s.merge(r.Updates)
				verdicts <- rok
			}
		}(h)
	}
	wg.Wait()
	close(verdicts)
	for v := range verdicts {
		if v {
			acked = true
		}
	}
	if !acked {
		s.suspect(target)
	}
}

// syncRound runs one anti-entropy exchange with a random live member — or,
// a DeadSyncFraction of the time, with a random retained dead member, the
// resurrection path that lets a healed partition re-merge (see
// Config.DeadSyncFraction).
func (s *Service) syncRound() {
	s.mu.Lock()
	peers := s.otherAliveLocked()
	if s.cfg.DeadSyncFraction > 0 && s.rng.Float64() < s.cfg.DeadSyncFraction {
		if dead := s.deadLocked(); len(dead) > 0 {
			peers = dead
		}
	}
	if len(peers) == 0 {
		s.mu.Unlock()
		return
	}
	peer := peers[s.rng.IntN(len(peers))]
	msg := transport.Gossip{
		Kind: transport.GossipSync, From: s.cfg.Addr,
		Full: true, Updates: s.fullStateLocked(),
	}
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ProbeTimeout)
	defer cancel()
	reply, _, err := s.call(ctx, peer, msg)
	if err == nil {
		s.merge(reply.Updates)
	}
}

// expireSuspects confirms death for suspects whose refutation window
// closed, and forgets dead members whose retention lapsed.
func (s *Service) expireSuspects() {
	now := time.Now()
	s.mu.Lock()
	changed := false
	for addr, m := range s.members {
		switch {
		case m.status == StatusSuspect && now.Sub(m.since) >= s.cfg.SuspicionTimeout:
			m.status = StatusDead
			m.since = now
			s.version++
			s.enqueueLocked(transport.PeerState{Addr: addr, Status: uint8(StatusDead), Incarnation: m.incarnation})
			if s.metrics != nil {
				s.metrics.deaths.Inc()
			}
			changed = true
		case m.status == StatusDead && now.Sub(m.since) >= s.cfg.DeadRetention:
			delete(s.members, addr)
		}
	}
	s.finishMutationLocked(changed)
}

// suspect marks a probe-failed member. No version bump and no OnChange:
// the alive set is unchanged until the suspicion is confirmed.
func (s *Service) suspect(addr string) {
	s.mu.Lock()
	m, known := s.members[addr]
	if known && m.status == StatusAlive {
		m.status = StatusSuspect
		m.since = time.Now()
		s.enqueueLocked(transport.PeerState{Addr: addr, Status: uint8(StatusSuspect), Incarnation: m.incarnation})
		if s.metrics != nil {
			s.metrics.suspicions.Inc()
		}
	}
	s.mu.Unlock()
}

// ---- table mutation ----

// merge folds a batch of updates into the table and fires OnChange once if
// the alive set changed.
func (s *Service) merge(updates []transport.PeerState) {
	if len(updates) == 0 {
		return
	}
	s.mu.Lock()
	changed := false
	for _, u := range updates {
		if s.applyLocked(u) {
			changed = true
		}
	}
	s.finishMutationLocked(changed)
}

// finishMutationLocked rebuilds the probe ring and fires OnChange outside
// the lock when a mutation changed the alive set. Callers hold s.mu; it is
// released here.
func (s *Service) finishMutationLocked(changed bool) {
	if !changed {
		s.mu.Unlock()
		return
	}
	s.rebuildRingLocked()
	alive, version := s.aliveLocked(), s.version
	cb := s.cfg.OnChange
	s.mu.Unlock()
	if cb != nil {
		cb(alive, version)
	}
}

// applyLocked folds one update in, returning whether the alive set changed.
// The precedence rules are SWIM's: a higher incarnation always wins; at
// equal incarnations the more severe status wins (Dead > Suspect > Alive).
// Claims about self are special: any non-alive claim at our current
// incarnation (or above) is refuted by bumping our incarnation past it and
// gossiping the refutation.
func (s *Service) applyLocked(u transport.PeerState) bool {
	if u.Addr == "" {
		return false
	}
	status := Status(u.Status)
	if u.Addr == s.cfg.Addr {
		self := s.members[s.cfg.Addr]
		switch {
		case status != StatusAlive && u.Incarnation >= self.incarnation:
			self.incarnation = u.Incarnation + 1
			s.enqueueLocked(transport.PeerState{Addr: s.cfg.Addr, Status: uint8(StatusAlive), Incarnation: self.incarnation})
			if s.metrics != nil {
				s.metrics.refutations.Inc()
			}
		case status == StatusAlive && u.Incarnation > self.incarnation:
			self.incarnation = u.Incarnation
		}
		return false
	}
	m, known := s.members[u.Addr]
	if !known {
		s.members[u.Addr] = &memberState{
			status: status, incarnation: u.Incarnation,
			since: time.Now(),
		}
		s.enqueueLocked(u)
		if status != StatusDead {
			s.version++
			return true
		}
		// Learning that a stranger died changes nothing we route to, but
		// remembering it (until DeadRetention) blocks resurrection by
		// stale alive claims.
		return false
	}
	newer := u.Incarnation > m.incarnation ||
		(u.Incarnation == m.incarnation && status > m.status)
	if !newer {
		return false
	}
	wasDead := m.status == StatusDead
	m.incarnation = u.Incarnation
	if status != m.status {
		m.since = time.Now()
	}
	m.status = status
	s.enqueueLocked(u)
	if (status == StatusDead) != wasDead {
		s.version++
		return true
	}
	return false
}

// enqueueLocked queues one update for piggyback dissemination, superseding
// any older queued claim about the same address.
func (s *Service) enqueueLocked(u transport.PeerState) {
	kept := s.queue[:0]
	for _, q := range s.queue {
		if q.state.Addr != u.Addr {
			kept = append(kept, q)
		}
	}
	s.queue = kept
	limit := s.cfg.RetransmitMult * int(math.Ceil(math.Log2(float64(len(s.members)+1))))
	if limit < s.cfg.RetransmitMult {
		limit = s.cfg.RetransmitMult
	}
	s.queue = append(s.queue, &queuedUpdate{state: u, left: limit})
}

// takePiggybackLocked selects up to MaxPiggyback queued updates —
// freshest (most transmissions remaining) first — and spends one
// transmission on each.
func (s *Service) takePiggybackLocked() []transport.PeerState {
	if len(s.queue) == 0 {
		return nil
	}
	sort.SliceStable(s.queue, func(i, j int) bool { return s.queue[i].left > s.queue[j].left })
	n := len(s.queue)
	if n > s.cfg.MaxPiggyback {
		n = s.cfg.MaxPiggyback
	}
	out := make([]transport.PeerState, 0, n)
	for _, q := range s.queue[:n] {
		out = append(out, q.state)
		q.left--
	}
	kept := s.queue[:0]
	for _, q := range s.queue {
		if q.left > 0 {
			kept = append(kept, q)
		}
	}
	s.queue = kept
	return out
}

// fullStateLocked renders the whole table as a wire payload.
func (s *Service) fullStateLocked() []transport.PeerState {
	out := make([]transport.PeerState, 0, len(s.members))
	for addr, m := range s.members {
		out = append(out, transport.PeerState{Addr: addr, Status: uint8(m.status), Incarnation: m.incarnation})
	}
	return out
}

func (s *Service) aliveLocked() []string {
	out := make([]string, 0, len(s.members))
	for addr, m := range s.members {
		if m.status != StatusDead {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// deadLocked returns the addresses of retained dead members.
func (s *Service) deadLocked() []string {
	var out []string
	for addr, m := range s.members {
		if m.status == StatusDead {
			out = append(out, addr)
		}
	}
	return out
}

// otherAliveLocked is aliveLocked minus self.
func (s *Service) otherAliveLocked() []string {
	alive := s.aliveLocked()
	out := alive[:0]
	for _, a := range alive {
		if a != s.cfg.Addr {
			out = append(out, a)
		}
	}
	return out
}

// rebuildRingLocked reshuffles the probe order over current non-dead
// members. Round-robin over a shuffled ring (instead of uniform random
// picks) bounds the time between two probes of the same member — SWIM's
// deterministic detection-latency trick.
func (s *Service) rebuildRingLocked() {
	s.ring = s.otherAliveLocked()
	s.rng.Shuffle(len(s.ring), func(i, j int) { s.ring[i], s.ring[j] = s.ring[j], s.ring[i] })
	s.ringIdx = 0
}

// nextTargetLocked advances the probe ring, reshuffling when exhausted.
func (s *Service) nextTargetLocked() string {
	if s.ringIdx >= len(s.ring) {
		s.rebuildRingLocked()
	}
	if len(s.ring) == 0 {
		return ""
	}
	t := s.ring[s.ringIdx]
	s.ringIdx++
	// The ring can lag the table (rebuilt only on alive-set changes and
	// wrap-around); skip members that died since the last shuffle.
	if m, ok := s.members[t]; !ok || m.status == StatusDead {
		return ""
	}
	return t
}

// pickHelpersLocked selects up to k live members other than self and the
// probe target.
func (s *Service) pickHelpersLocked(target string, k int) []string {
	candidates := make([]string, 0, len(s.members))
	for _, a := range s.otherAliveLocked() {
		if a != target {
			candidates = append(candidates, a)
		}
	}
	s.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}

// ackWithPiggyback builds the standard reply: an ack carrying the next
// piggyback batch.
func (s *Service) ackWithPiggyback() transport.Gossip {
	s.mu.Lock()
	defer s.mu.Unlock()
	return transport.Gossip{Kind: transport.GossipAck, From: s.cfg.Addr, Updates: s.takePiggybackLocked()}
}
