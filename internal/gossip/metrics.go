package gossip

import (
	"pdht/internal/obs"
)

// metrics holds the failure detector's instruments. The struct pointer on
// Service is nil when uninstrumented, so every recording site pays one nil
// check and nothing else.
type metrics struct {
	probeRTT      *obs.Histogram // direct-ping round trips that succeeded
	probeFailures *obs.Counter   // direct pings that timed out or errored
	suspicions    *obs.Counter   // alive→suspect transitions declared locally
	refutations   *obs.Counter   // self-refutations (incarnation bumps)
	deaths        *obs.Counter   // suspect→dead confirmations declared locally
}

// RegisterMetrics registers the membership layer's instruments on reg under
// pdht_gossip_* and binds the scrape-time gauges (view version, alive member
// count) to this service. Call before Start; the protocol loop reads the
// instrument handles without synchronization.
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	s.metrics = &metrics{
		probeRTT: reg.Histogram("pdht_gossip_probe_seconds",
			"Direct-probe round-trip time of successful pings.", nil),
		probeFailures: reg.Counter("pdht_gossip_probe_failures_total",
			"Direct probes that got no answer (before indirect probing)."),
		suspicions: reg.Counter("pdht_gossip_suspicions_total",
			"Members this node declared suspect after direct and indirect probes failed."),
		refutations: reg.Counter("pdht_gossip_refutations_total",
			"Self-refutations: rumors of this node's death answered with an incarnation bump."),
		deaths: reg.Counter("pdht_gossip_deaths_total",
			"Suspects this node confirmed dead after the suspicion timeout."),
	}
	reg.GaugeFunc("pdht_gossip_view_version",
		"Current membership view version; bumps on every confirmed change.",
		func() float64 { return float64(s.Version()) })
	reg.GaugeFunc("pdht_gossip_members_alive",
		"Non-dead members in the view, self included.",
		func() float64 { return float64(len(s.Alive())) })
}
