package gossip

import (
	"context"
	"strings"
	"testing"

	"pdht/internal/obs"
	"pdht/internal/transport"
)

// TestMetricsRefutationAndGauges drives the state machine directly: a rumor
// of our own death must bump the refutation counter, and the scrape-time
// gauges must track version and alive count.
func TestMetricsRefutationAndGauges(t *testing.T) {
	noCall := func(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
		return transport.Gossip{}, true, nil
	}
	s, err := New(Config{Addr: "a"}, noCall)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)

	s.MergeState(transport.Gossip{Updates: []transport.PeerState{
		{Addr: "b", Status: uint8(StatusAlive)},
		{Addr: "a", Status: uint8(StatusDead), Incarnation: 0}, // rumor of our death
	}})
	if got := s.metrics.refutations.Value(); got != 1 {
		t.Errorf("refutations = %d, want 1", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "pdht_gossip_view_version 2") {
		t.Errorf("view version gauge wrong:\n%s", out)
	}
	if !strings.Contains(out, "pdht_gossip_members_alive 2") {
		t.Errorf("alive gauge wrong:\n%s", out)
	}
}

// TestMetricsSuspicion exercises the probe-failure path: a member that
// answers nothing becomes suspect and the counters say so.
func TestMetricsSuspicion(t *testing.T) {
	dead := func(ctx context.Context, addr string, msg transport.Gossip) (transport.Gossip, bool, error) {
		return transport.Gossip{}, false, context.DeadlineExceeded
	}
	s, err := New(Config{Addr: "a", IndirectProbes: 1}, dead)
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterMetrics(obs.NewRegistry())
	s.MergeState(transport.Gossip{Updates: []transport.PeerState{{Addr: "b", Status: uint8(StatusAlive)}}})

	s.probeRound()
	if got := s.metrics.probeFailures.Value(); got != 1 {
		t.Errorf("probe failures = %d, want 1", got)
	}
	if got := s.metrics.suspicions.Value(); got != 1 {
		t.Errorf("suspicions = %d, want 1", got)
	}
}
