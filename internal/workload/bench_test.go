package workload

import (
	"testing"

	"pdht/internal/zipf"
)

func BenchmarkPoissonSmallLambda(b *testing.B) {
	rng := testRng(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Poisson(rng, 5)
	}
}

func BenchmarkPoissonLargeLambda(b *testing.B) {
	rng := testRng(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Poisson(rng, 667)
	}
}

func BenchmarkQueryRound(b *testing.B) {
	s := zipf.NewSampler(zipf.MustNew(1.2, 40000), testRng(2))
	g, err := NewQueryGen(s, 20000, 1.0/30.0, testRng(3))
	if err != nil {
		b.Fatal(err)
	}
	var buf []Query
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Round(buf)
	}
}
