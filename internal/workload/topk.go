package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pdht/internal/netsim"
	"pdht/internal/zipf"
)

// TopKQuery is one multi-term top-k query event: Origin asks for the best
// documents matching Pick terms of the term-group currently at popularity
// rank Rank. Slots are the chosen term positions within the group; the
// simulation maps (group, slot) pairs onto its term-key universe.
type TopKQuery struct {
	Origin netsim.PeerID
	Rank   int
	Group  int
	Slots  []int
}

// TopKGen draws each round's top-k queries. Groups play the role keys play
// for QueryGen — Zipf-ranked popularity over a universe of term-groups —
// and each query picks a uniform origin plus a uniform subset of the
// group's terms, modeling the multi-predicate queries of the paper's news
// scenario ("term=weather AND date=…") rather than single-key point
// lookups.
type TopKGen struct {
	sampler   *zipf.Sampler
	numPeers  int
	fQry      float64
	pick      int
	groupSize int
	rng       *rand.Rand
}

// NewTopKGen returns a generator over the sampler's group universe,
// emitting Poisson(numPeers·fQry) queries per round of pick terms each out
// of groups of groupSize terms.
func NewTopKGen(sampler *zipf.Sampler, numPeers int, fQry float64, pick, groupSize int, rng *rand.Rand) (*TopKGen, error) {
	if numPeers < 1 {
		return nil, fmt.Errorf("workload: numPeers %d must be positive", numPeers)
	}
	if fQry < 0 || math.IsNaN(fQry) || math.IsInf(fQry, 0) {
		return nil, fmt.Errorf("workload: fQry %v must be non-negative and finite", fQry)
	}
	if pick < 1 || pick > groupSize {
		return nil, fmt.Errorf("workload: pick %d out of [1,%d]", pick, groupSize)
	}
	return &TopKGen{sampler: sampler, numPeers: numPeers, fQry: fQry, pick: pick, groupSize: groupSize, rng: rng}, nil
}

// Sampler exposes the underlying Zipf sampler over groups, so scenarios
// can shift group popularity between rounds.
func (g *TopKGen) Sampler() *zipf.Sampler { return g.sampler }

// Round returns this round's queries. The slice is reused across calls;
// callers must not retain it or the Slots it holds.
func (g *TopKGen) Round(buf []TopKQuery) []TopKQuery {
	n := Poisson(g.rng, float64(g.numPeers)*g.fQry)
	buf = buf[:0]
	for i := 0; i < n; i++ {
		rank := g.sampler.SampleRank()
		buf = append(buf, TopKQuery{
			Origin: netsim.PeerID(g.rng.IntN(g.numPeers)),
			Rank:   rank,
			Group:  g.sampler.KeyAtRank(rank),
			Slots:  g.rng.Perm(g.groupSize)[:g.pick],
		})
	}
	return buf
}
