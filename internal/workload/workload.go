// Package workload generates the traffic the paper's scenario prescribes:
// Zipf-distributed queries at fQry per peer per round, uniform updates at
// fUpd per key per round, and the query-distribution shifts ("the
// popularity of keys can change dramatically over time", §1) that the
// selection algorithm must adapt to. QueryGen and UpdateGen are the steady
// generators; ShiftEvent and Schedule script the mid-run popularity
// changes.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"pdht/internal/netsim"
	"pdht/internal/zipf"
)

// Query is one query event: Origin asks for the key currently at popularity
// rank Rank, which is key index Key.
type Query struct {
	Origin netsim.PeerID
	Rank   int
	Key    int
}

// QueryGen draws each round's queries. The number of queries per round is
// Poisson(numPeers·fQry) — the aggregate of many rare per-peer events —
// and each query picks a uniform origin and a Zipf-ranked key.
type QueryGen struct {
	sampler  *zipf.Sampler
	numPeers int
	fQry     float64
	rng      *rand.Rand
}

// NewQueryGen returns a generator over the sampler's key universe.
func NewQueryGen(sampler *zipf.Sampler, numPeers int, fQry float64, rng *rand.Rand) (*QueryGen, error) {
	if numPeers < 1 {
		return nil, fmt.Errorf("workload: numPeers %d must be positive", numPeers)
	}
	if fQry < 0 || math.IsNaN(fQry) || math.IsInf(fQry, 0) {
		return nil, fmt.Errorf("workload: fQry %v must be non-negative and finite", fQry)
	}
	return &QueryGen{sampler: sampler, numPeers: numPeers, fQry: fQry, rng: rng}, nil
}

// Sampler exposes the underlying Zipf sampler, so scenarios can shift the
// distribution between rounds.
func (g *QueryGen) Sampler() *zipf.Sampler { return g.sampler }

// SetRate changes the per-peer query frequency (the x-axis walk of the
// figures).
func (g *QueryGen) SetRate(fQry float64) { g.fQry = fQry }

// Round returns this round's queries. The slice is reused across calls;
// callers must not retain it.
func (g *QueryGen) Round(buf []Query) []Query {
	n := Poisson(g.rng, float64(g.numPeers)*g.fQry)
	buf = buf[:0]
	for i := 0; i < n; i++ {
		rank := g.sampler.SampleRank()
		buf = append(buf, Query{
			Origin: netsim.PeerID(g.rng.IntN(g.numPeers)),
			Rank:   rank,
			Key:    g.sampler.KeyAtRank(rank),
		})
	}
	return buf
}

// Update is one update event for a key index.
type Update struct {
	Key int
}

// UpdateGen draws each round's key updates: Poisson(keys·fUpd) per round,
// each hitting a uniformly random key (the paper updates every article
// about once a day, regardless of popularity).
type UpdateGen struct {
	keys int
	fUpd float64
	rng  *rand.Rand
}

// NewUpdateGen returns an update generator over keys key indices.
func NewUpdateGen(keys int, fUpd float64, rng *rand.Rand) (*UpdateGen, error) {
	if keys < 1 {
		return nil, fmt.Errorf("workload: keys %d must be positive", keys)
	}
	if fUpd < 0 || math.IsNaN(fUpd) || math.IsInf(fUpd, 0) {
		return nil, fmt.Errorf("workload: fUpd %v must be non-negative and finite", fUpd)
	}
	return &UpdateGen{keys: keys, fUpd: fUpd, rng: rng}, nil
}

// Round returns this round's updates, reusing buf.
func (g *UpdateGen) Round(buf []Update) []Update {
	n := Poisson(g.rng, float64(g.keys)*g.fUpd)
	buf = buf[:0]
	for i := 0; i < n; i++ {
		buf = append(buf, Update{Key: g.rng.IntN(g.keys)})
	}
	return buf
}

// Poisson draws from a Poisson distribution with the given mean. Knuth's
// product method serves small means; large means (busy rounds have
// λ ≈ 667) use the normal approximation, which is accurate to well under a
// percent there and O(1).
func Poisson(rng *rand.Rand, lambda float64) int {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
}

// ShiftKind selects how a distribution shift rearranges key popularity.
type ShiftKind int

const (
	// ShiftShuffle assigns every key a brand-new random rank — the
	// "query distribution changes dramatically" case.
	ShiftShuffle ShiftKind = iota
	// ShiftRotateHead rotates the top-N ranks by one: a gradual drift
	// where yesterday's hottest key falls to rank N.
	ShiftRotateHead
)

// ShiftEvent is a scheduled change of the query distribution.
type ShiftEvent struct {
	Round int
	Kind  ShiftKind
	// HeadSize is the N of ShiftRotateHead; ignored for ShiftShuffle.
	HeadSize int
}

// Schedule is a round-ordered list of shift events.
type Schedule []ShiftEvent

// Apply executes every event scheduled for the given round against the
// sampler and reports how many fired.
func (s Schedule) Apply(round int, sampler *zipf.Sampler) int {
	fired := 0
	for _, ev := range s {
		if ev.Round != round {
			continue
		}
		switch ev.Kind {
		case ShiftShuffle:
			sampler.Shuffle()
		case ShiftRotateHead:
			sampler.ShiftHead(ev.HeadSize)
		}
		fired++
	}
	return fired
}
