package workload

import (
	"math"
	"math/rand/v2"
	"testing"

	"pdht/internal/zipf"
)

func testRng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xbeef))
}

func TestPoissonMeanAndVariance(t *testing.T) {
	rng := testRng(1)
	for _, lambda := range []float64{0.5, 5, 29.9, 100, 667} {
		var sum, sumSq float64
		const n = 20000
		for i := 0; i < n; i++ {
			x := float64(Poisson(rng, lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.2 {
			t.Errorf("λ=%v: mean = %v", lambda, mean)
		}
		// Poisson variance equals the mean.
		if math.Abs(variance-lambda) > 0.15*lambda+0.5 {
			t.Errorf("λ=%v: variance = %v", lambda, variance)
		}
	}
}

func TestPoissonDegenerate(t *testing.T) {
	rng := testRng(2)
	if Poisson(rng, 0) != 0 || Poisson(rng, -5) != 0 {
		t.Error("non-positive λ must yield 0")
	}
}

func TestQueryGenValidation(t *testing.T) {
	s := zipf.NewSampler(zipf.MustNew(1.2, 10), testRng(3))
	if _, err := NewQueryGen(s, 0, 0.1, testRng(3)); err == nil {
		t.Error("numPeers=0 accepted")
	}
	if _, err := NewQueryGen(s, 10, -1, testRng(3)); err == nil {
		t.Error("negative fQry accepted")
	}
	if _, err := NewQueryGen(s, 10, math.Inf(1), testRng(3)); err == nil {
		t.Error("infinite fQry accepted")
	}
}

func TestQueryGenRate(t *testing.T) {
	s := zipf.NewSampler(zipf.MustNew(1.2, 1000), testRng(4))
	g, err := NewQueryGen(s, 2000, 1.0/30.0, testRng(5))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	const rounds = 300
	var buf []Query
	for r := 0; r < rounds; r++ {
		buf = g.Round(buf)
		total += len(buf)
		for _, q := range buf {
			if q.Origin < 0 || int(q.Origin) >= 2000 {
				t.Fatalf("origin %d out of range", q.Origin)
			}
			if q.Rank < 1 || q.Rank > 1000 || q.Key < 0 || q.Key >= 1000 {
				t.Fatalf("bad query %+v", q)
			}
		}
	}
	want := 2000.0 / 30.0 * rounds
	if math.Abs(float64(total)-want) > 0.1*want {
		t.Errorf("total queries = %d, want ≈ %v", total, want)
	}
}

func TestQueryGenSetRate(t *testing.T) {
	s := zipf.NewSampler(zipf.MustNew(1.2, 100), testRng(6))
	g, err := NewQueryGen(s, 1000, 0, testRng(7))
	if err != nil {
		t.Fatal(err)
	}
	if buf := g.Round(nil); len(buf) != 0 {
		t.Error("zero rate produced queries")
	}
	g.SetRate(1)
	if buf := g.Round(nil); len(buf) == 0 {
		t.Error("rate 1 produced nothing")
	}
}

func TestQueryGenZipfHead(t *testing.T) {
	s := zipf.NewSampler(zipf.MustNew(1.2, 1000), testRng(8))
	g, err := NewQueryGen(s, 10000, 0.1, testRng(9))
	if err != nil {
		t.Fatal(err)
	}
	head := 0
	total := 0
	var buf []Query
	for r := 0; r < 50; r++ {
		buf = g.Round(buf)
		for _, q := range buf {
			total++
			if q.Rank <= 10 {
				head++
			}
		}
	}
	frac := float64(head) / float64(total)
	want := zipf.MustNew(1.2, 1000).HeadMass(10)
	if math.Abs(frac-want) > 0.05 {
		t.Errorf("head-10 mass = %v, want ≈ %v", frac, want)
	}
}

func TestUpdateGenValidationAndRate(t *testing.T) {
	if _, err := NewUpdateGen(0, 0.1, testRng(10)); err == nil {
		t.Error("keys=0 accepted")
	}
	if _, err := NewUpdateGen(10, math.NaN(), testRng(10)); err == nil {
		t.Error("NaN fUpd accepted")
	}
	g, err := NewUpdateGen(4000, 1.0/86400.0, testRng(11))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	var buf []Update
	const rounds = 5000
	for r := 0; r < rounds; r++ {
		buf = g.Round(buf)
		for _, u := range buf {
			if u.Key < 0 || u.Key >= 4000 {
				t.Fatalf("update key %d out of range", u.Key)
			}
		}
		total += len(buf)
	}
	want := 4000.0 / 86400.0 * rounds // ≈ 231
	if math.Abs(float64(total)-want) > 0.25*want {
		t.Errorf("total updates = %d, want ≈ %v", total, want)
	}
}

func TestScheduleApply(t *testing.T) {
	s := zipf.NewSampler(zipf.MustNew(1.2, 100), testRng(12))
	sched := Schedule{
		{Round: 5, Kind: ShiftRotateHead, HeadSize: 10},
		{Round: 5, Kind: ShiftRotateHead, HeadSize: 10},
		{Round: 9, Kind: ShiftShuffle},
	}
	if fired := sched.Apply(4, s); fired != 0 {
		t.Errorf("round 4 fired %d events", fired)
	}
	before := s.KeyAtRank(1)
	if fired := sched.Apply(5, s); fired != 2 {
		t.Errorf("round 5 fired %d events, want 2", fired)
	}
	// Two single-step rotations of the head move the old rank-1 key to
	// rank 9 and rank 3's original occupant into rank 1.
	if s.KeyAtRank(1) == before {
		t.Error("rotation did not change the top key")
	}
	if fired := sched.Apply(9, s); fired != 1 {
		t.Errorf("round 9 fired %d events, want 1", fired)
	}
}
