package adapt

import "fmt"

// Config parameterizes a Tuner. The zero value selects defaults suitable for
// a live node; DefaultConfig spells them out.
type Config struct {
	// SketchWidth and SketchDepth set the count-min geometry (rounded up
	// to a power of two / clamped to [1,8]). Defaults 1<<14 × 4: 512 KiB
	// of counters, collision error ≲ 2e/width of a window's volume.
	SketchWidth int
	SketchDepth int
	// TopK is the heavy-hitters list capacity feeding the Zipf fit.
	// Default 256 — the fit is dominated by the head, and 256 ranks pin
	// the exponent to well under the ±50% the §5.1.1 sensitivity analysis
	// tolerates.
	TopK int
	// DistinctBits sizes the linear-counting bitmap per window. Default
	// 1<<14 (2 KiB per window), accurate to a few percent up to ~16k
	// distinct keys per window.
	DistinctBits int
	// UniverseWindows is how many retune periods one generation of the
	// distinct-key bitmap spans (default 8, so the estimate covers 8–16
	// periods). The key universe feeds the Zipf normalization, whose
	// fixed point is far more sensitive to undercounting than the
	// per-key rates are — and unlike rates, the universe changes slowly,
	// so it earns a longer horizon than the frequency sketches.
	UniverseWindows int
	// TTLMin and TTLMax clamp the recommended keyTtl, in rounds. Defaults
	// 1 and 86400 (one day of one-second rounds). TTLMax also caps the
	// recommendation when fMin estimates to zero (maintenance-free
	// indexing: everything is worth keeping).
	TTLMin, TTLMax int
	// Dup and Dup2 are the message-duplication constants of the fitted
	// scenario (the model's only parameters a peer cannot observe
	// directly). Defaults 1.8, the paper's [LvCa02] constants.
	Dup, Dup2 float64
	// FallbackAlpha stands in when the Zipf fit is ill-posed (fewer than
	// two distinct observed counts). Default 1.2, the paper's [Srip01]
	// literature constant.
	FallbackAlpha float64
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		SketchWidth:     1 << 14,
		SketchDepth:     4,
		TopK:            256,
		DistinctBits:    1 << 14,
		UniverseWindows: 8,
		TTLMin:          1,
		TTLMax:          86400,
		Dup:             1.8,
		Dup2:            1.8,
		FallbackAlpha:   1.2,
	}
}

// setDefaults fills zero fields.
func (c *Config) setDefaults() {
	d := DefaultConfig()
	if c.SketchWidth == 0 {
		c.SketchWidth = d.SketchWidth
	}
	if c.SketchDepth == 0 {
		c.SketchDepth = d.SketchDepth
	}
	if c.TopK == 0 {
		c.TopK = d.TopK
	}
	if c.DistinctBits == 0 {
		c.DistinctBits = d.DistinctBits
	}
	if c.UniverseWindows == 0 {
		c.UniverseWindows = d.UniverseWindows
	}
	if c.TTLMin == 0 {
		c.TTLMin = d.TTLMin
	}
	if c.TTLMax == 0 {
		c.TTLMax = d.TTLMax
	}
	if c.Dup == 0 {
		c.Dup = d.Dup
	}
	if c.Dup2 == 0 {
		c.Dup2 = d.Dup2
	}
	if c.FallbackAlpha == 0 {
		c.FallbackAlpha = d.FallbackAlpha
	}
}

func (c Config) validate() error {
	switch {
	case c.TTLMin < 1:
		return fmt.Errorf("adapt: TTLMin %d must be positive", c.TTLMin)
	case c.TTLMax < c.TTLMin:
		return fmt.Errorf("adapt: TTLMax %d below TTLMin %d", c.TTLMax, c.TTLMin)
	case c.Dup < 1 || c.Dup2 < 1:
		return fmt.Errorf("adapt: duplication factors (%v, %v) must be at least 1", c.Dup, c.Dup2)
	case c.UniverseWindows < 1:
		return fmt.Errorf("adapt: UniverseWindows %d must be positive", c.UniverseWindows)
	case c.FallbackAlpha < 0:
		return fmt.Errorf("adapt: FallbackAlpha %v must be non-negative", c.FallbackAlpha)
	}
	return nil
}
