package adapt

import "fmt"

// maxDepth bounds the number of count-min rows so Observe can stage its
// per-row indices in a fixed-size array — the hot path allocates nothing.
const maxDepth = 8

// Sketch is a count-min sketch with conservative update and two-window
// rotation. It estimates per-key event counts over the recent past in O(depth)
// time per observation and depth·width·2 counters of memory, regardless of how
// many distinct keys flow through it — the property that lets a peer track
// millions of keys without a per-key map.
//
// Conservative update increments, for each observation, only the row counters
// currently equal to the row minimum; estimates remain upper bounds but the
// overestimation from hash collisions shrinks substantially on skewed streams
// (exactly the Zipf traffic the paper assumes).
//
// Windowed decay: observations land in the current window; Rotate retires it
// to the previous slot and clears the oldest. Count sums the two windows, so
// an estimate covers between one and two windows of history and traffic older
// than two windows is gone entirely — the sketch forgets a shifted workload
// at the same cadence the Tuner retunes.
type Sketch struct {
	width uint64 // counters per row, power of two
	depth int
	mask  uint64
	seeds [maxDepth]uint64
	cur   []uint32 // depth rows of width counters, current window
	prev  []uint32 // the retired window
}

// NewSketch returns a sketch with the given geometry. width is rounded up to
// a power of two; depth is clamped to [1, 8]. A 1<<14 × 4 sketch costs 512 KiB
// and keeps the collision error below ~2e/width of the window volume with
// probability 1−e⁻⁴.
func NewSketch(width, depth int) (*Sketch, error) {
	if width < 2 {
		return nil, fmt.Errorf("adapt: sketch width %d must be at least 2", width)
	}
	if depth < 1 || depth > maxDepth {
		return nil, fmt.Errorf("adapt: sketch depth %d out of [1,%d]", depth, maxDepth)
	}
	w := uint64(1)
	for w < uint64(width) {
		w <<= 1
	}
	s := &Sketch{
		width: w,
		depth: depth,
		mask:  w - 1,
		cur:   make([]uint32, w*uint64(depth)),
		prev:  make([]uint32, w*uint64(depth)),
	}
	// Deterministic, distinct row seeds: a splitmix64 walk from a fixed
	// constant. Determinism keeps simulations reproducible.
	x := uint64(0x5bf0_3635_d1a2_b4a7)
	for i := range s.seeds {
		x += 0x9e3779b97f4a7c15
		s.seeds[i] = mix64(x)
	}
	return s, nil
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit permutation,
// the same mixer keyspace.HashString finishes with.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Observe records one occurrence of key in the current window with a
// conservative update. Allocation-free.
func (s *Sketch) Observe(key uint64) {
	var idx [maxDepth]uint64
	min := uint32(1<<32 - 1)
	for r := 0; r < s.depth; r++ {
		i := uint64(r)*s.width + (mix64(key^s.seeds[r]) & s.mask)
		idx[r] = i
		if c := s.cur[i]; c < min {
			min = c
		}
	}
	for r := 0; r < s.depth; r++ {
		if s.cur[idx[r]] == min {
			s.cur[idx[r]] = min + 1
		}
	}
}

// Count estimates how many times key was observed over the last one-to-two
// windows: the row-minimum of the current window plus the row-minimum of the
// previous one. An upper bound on the true count. Allocation-free.
func (s *Sketch) Count(key uint64) uint64 {
	minCur := uint32(1<<32 - 1)
	minPrev := uint32(1<<32 - 1)
	for r := 0; r < s.depth; r++ {
		i := uint64(r)*s.width + (mix64(key^s.seeds[r]) & s.mask)
		if c := s.cur[i]; c < minCur {
			minCur = c
		}
		if c := s.prev[i]; c < minPrev {
			minPrev = c
		}
	}
	return uint64(minCur) + uint64(minPrev)
}

// Rotate closes the current window: it becomes the previous window, and the
// window before it is forgotten. O(width·depth), run once per retune period.
func (s *Sketch) Rotate() {
	s.cur, s.prev = s.prev, s.cur
	clear(s.cur)
}

// MemoryBytes returns the sketch's counter footprint.
func (s *Sketch) MemoryBytes() int {
	return 4 * (len(s.cur) + len(s.prev))
}
