package adapt

import (
	"strings"
	"testing"

	"pdht/internal/obs"
)

// TestRegisterMetrics checks the scrape surface on both sides of the first
// retune: fitted gauges read NaN before a fit and real values after.
func TestRegisterMetrics(t *testing.T) {
	tuner, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tuner.RegisterMetrics(reg)

	render := func() string {
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	out := render()
	if !strings.Contains(out, "pdht_adapt_fmin NaN") {
		t.Errorf("fmin before first fit should be NaN:\n%s", out)
	}
	if !strings.Contains(out, "pdht_adapt_observed_queries 0") {
		t.Errorf("observed gauge missing:\n%s", out)
	}

	// A skewed window over enough rounds gives the fit something to chew.
	for i := 0; i < 2000; i++ {
		tuner.Observe(uint64(i % 50))
	}
	if _, err := tuner.Retune(Inputs{
		Members: 16, Observers: 1, Capacity: 100, Repl: 2,
		Env: 0.1, WindowRounds: 20,
	}); err != nil {
		t.Fatal(err)
	}

	out = render()
	if strings.Contains(out, "pdht_adapt_keyttl NaN") {
		t.Errorf("keyttl still NaN after a successful retune:\n%s", out)
	}
	if !strings.Contains(out, "pdht_adapt_retunes 1") {
		t.Errorf("retunes gauge wrong:\n%s", out)
	}
	if !strings.Contains(out, "pdht_adapt_observed_queries 2000") {
		t.Errorf("observed gauge wrong:\n%s", out)
	}
}
