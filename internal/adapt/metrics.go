package adapt

import (
	"math"

	"pdht/internal/obs"
)

// RegisterMetrics exposes the control loop's state on reg under pdht_adapt_*
// as scrape-time gauges: the fitted scenario (fMin, alpha, fQry, distinct
// keys), the actuated knobs (keyTtl, gate threshold), and the loop's own
// activity (retunes, observed queries, insert-gate verdicts, summary
// footprint). Values that need a successful retune read NaN until one lands,
// so a dashboard can tell "no fit yet" from "fitted zero".
func (t *Tuner) RegisterMetrics(reg *obs.Registry) {
	fitted := func(get func(Decision) float64) func() float64 {
		return func() float64 {
			snap := t.Snapshot()
			if !snap.Ready {
				return math.NaN()
			}
			return get(snap.Last)
		}
	}
	reg.GaugeFunc("pdht_adapt_fmin",
		"Fitted indexing threshold fMin in network-wide queries per round; +Inf gates everything, NaN before the first fit.",
		fitted(func(d Decision) float64 { return d.FMin }))
	reg.GaugeFunc("pdht_adapt_keyttl",
		"Actuated keyTtl in rounds (1/fMin clamped to the configured range); NaN before the first fit.",
		fitted(func(d Decision) float64 { return float64(d.KeyTtl) }))
	reg.GaugeFunc("pdht_adapt_alpha",
		"Fitted Zipf exponent of the observed query stream; NaN before the first fit.",
		fitted(func(d Decision) float64 { return d.Alpha }))
	reg.GaugeFunc("pdht_adapt_fqry",
		"Measured per-peer query rate in queries per round; NaN before the first fit.",
		fitted(func(d Decision) float64 { return d.FQry }))
	reg.GaugeFunc("pdht_adapt_distinct_keys",
		"Estimated distinct-key count behind the fit; NaN before the first fit.",
		fitted(func(d Decision) float64 { return float64(d.DistinctKeys) }))
	reg.GaugeFunc("pdht_adapt_gate_threshold",
		"Insert gate in sketch counts; 0 or 1 admits everything, NaN before the first fit.",
		fitted(func(d Decision) float64 { return float64(d.GateThreshold) }))
	reg.GaugeFunc("pdht_adapt_retunes",
		"Successful retunes since boot.",
		func() float64 { return float64(t.retunes.Load()) })
	reg.GaugeFunc("pdht_adapt_observed_queries",
		"Queries fed to the tuner since boot.",
		func() float64 { return float64(t.observed.Load()) })
	reg.GaugeFunc("pdht_adapt_inserts_gated",
		"Insert candidates refused by the fMin gate since boot.",
		func() float64 { return float64(t.gated.Load()) })
	reg.GaugeFunc("pdht_adapt_inserts_allowed",
		"Insert candidates admitted by the fMin gate since boot.",
		func() float64 { return float64(t.allowed.Load()) })
	reg.GaugeFunc("pdht_adapt_summary_bytes",
		"Fixed memory footprint of the frequency summaries.",
		func() float64 { return float64(t.Snapshot().MemoryBytes) })
}
