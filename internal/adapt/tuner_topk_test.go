package adapt

import (
	"testing"
)

// The top-k traffic window must charge the fitted model: the same query
// stream with top-k load on the side fits a higher (or equal, never
// lower) fMin than without it.
func TestRetuneChargesTopKTraffic(t *testing.T) {
	feed := func(tn *Tuner, topk bool) Decision {
		for round := 0; round < 60; round++ {
			for k := uint64(0); k < 40; k++ {
				for q := uint64(0); q < 40/(k+1); q++ {
					tn.Observe(k)
				}
			}
			if topk {
				tn.ObserveTopK(12) // one 12-leg top-k query per round
			}
		}
		d, err := tn.Retune(Inputs{
			Members: 50, Observers: 50, Capacity: 256, Repl: 3,
			Env: 1.0 / 14, WindowRounds: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	base, _ := NewTuner(Config{})
	loaded, _ := NewTuner(Config{})
	dBase := feed(base, false)
	dLoaded := feed(loaded, true)
	if dLoaded.FMin < dBase.FMin {
		t.Fatalf("fMin with top-k load = %v, want ≥ baseline %v", dLoaded.FMin, dBase.FMin)
	}
	if dLoaded.FMin == dBase.FMin {
		t.Fatalf("fMin unchanged at %v; the top-k charge never reached the model", dBase.FMin)
	}
}

// Count exposes the sketch to the top-k planner: hot terms must read
// higher than cold ones, and the window rotation must age counts out.
func TestTunerCountFollowsSketch(t *testing.T) {
	tn, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tn.Observe(7)
	}
	tn.Observe(8)
	if hot, cold := tn.Count(7), tn.Count(8); hot <= cold {
		t.Fatalf("Count(hot)=%d Count(cold)=%d, want hot above cold", hot, cold)
	}
	if tn.Count(9) != 0 {
		t.Fatalf("Count(unseen) = %d, want 0", tn.Count(9))
	}
}
