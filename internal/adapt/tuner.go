package adapt

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"pdht/internal/model"
	"pdht/internal/zipf"
)

// gateAll is the threshold sentinel meaning "nothing is worth indexing" —
// no real sketch count reaches it.
const gateAll = math.MaxUint64

// Inputs carries the scenario facts a Tuner cannot measure from the query
// stream itself: cluster shape and the maintenance environment. The caller
// supplies them fresh at each retune so membership changes flow into the
// fitted model.
type Inputs struct {
	// Members is the current membership size (the model's NumPeers).
	Members int
	// Observers is how many peers' queries feed this tuner: 1 on a live
	// node (each peer observes only its own stream), the full population
	// in the simulator (one tuner sees every query). Scales the measured
	// rates from observed to network-wide.
	Observers int
	// Capacity is the per-peer index cache size (stor); Repl the
	// replica-group size, clamped to Members.
	Capacity int
	Repl     int
	// Env is the per-routing-entry per-round probe probability (eq. 8's
	// env). Zero means maintenance-free routing: indexing costs nothing to
	// hold, fMin is zero, and the tuner recommends TTLMax with no gating.
	Env float64
	// RefreshFanout reports that the node keeps replica sets TTL-coherent
	// by fanning the reset-on-hit refresh out to the whole set
	// (internal/replica): every index hit then costs Repl−1 extra write
	// legs, which the fitted model charges against the benefit of indexing
	// so the derived fMin — and through it the keyTtl actuation and the
	// insert gate — stays honest about what a hit really costs.
	RefreshFanout bool
	// WindowRounds is how many rounds elapsed since the previous Retune —
	// the denominator that turns window counts into rates.
	WindowRounds int
}

func (in Inputs) validate() error {
	switch {
	case in.Members < 2:
		return fmt.Errorf("adapt: %d members, need at least 2 to fit the model", in.Members)
	case in.Observers < 1:
		return fmt.Errorf("adapt: Observers %d must be positive", in.Observers)
	case in.Capacity < 1:
		return fmt.Errorf("adapt: Capacity %d must be positive", in.Capacity)
	case in.Repl < 1:
		return fmt.Errorf("adapt: Repl %d must be positive", in.Repl)
	case in.Env < 0 || math.IsNaN(in.Env):
		return fmt.Errorf("adapt: Env %v must be non-negative", in.Env)
	case in.WindowRounds < 1:
		return fmt.Errorf("adapt: WindowRounds %d must be positive", in.WindowRounds)
	}
	return nil
}

// Decision is one retune outcome: the fitted scenario and the two actuated
// knobs (keyTtl and the fMin gate).
type Decision struct {
	// KeyTtl is the recommended expiration time in rounds — the paper's
	// keyTtl = 1/fMin, clamped to [TTLMin, TTLMax].
	KeyTtl int
	// FMin is the fitted indexing threshold of eq. 2, in network-wide
	// queries per round. +Inf means nothing is worth indexing.
	FMin float64
	// Alpha, FQry and DistinctKeys are the fitted scenario: the
	// max-likelihood Zipf exponent of the heavy-hitter counts, the
	// measured per-peer query rate, and the estimated distinct-key count.
	Alpha        float64
	FQry         float64
	DistinctKeys int
	// WindowQueries and WindowRounds are the sample the fit consumed.
	WindowQueries uint64
	WindowRounds  int
	// PredictedHitRate and PredictedIndexSize evaluate eq. 14 / eq. 15 at
	// the fitted scenario and the recommended (clamped) TTL.
	PredictedHitRate   float64
	PredictedIndexSize float64
	// GateThreshold is FMin translated into sketch counts: a key whose
	// windowed count falls below it is not inserted after a broadcast.
	// 0 or 1 disables gating (every insert candidate has count ≥ 1).
	GateThreshold uint64
}

// Snapshot is the Tuner's observable state, for reports.
type Snapshot struct {
	// Last is the most recent successful Decision; Ready reports whether
	// one exists yet.
	Last  Decision
	Ready bool
	// Retunes counts successful retunes; Gated and Allowed the insert
	// decisions taken.
	Retunes, Gated, Allowed uint64
	// Observed is the total number of queries fed to Observe since boot.
	Observed uint64
	// MemoryBytes is the fixed footprint of the frequency summaries — the
	// bounded-memory claim, measurable.
	MemoryBytes int
}

// Tuner is the per-peer control loop: Observe every query (O(1),
// allocation-free), consult ShouldIndex/KeyTtl on every insert (the actuator
// side), and Retune periodically to refit the paper's model to the traffic
// actually seen.
//
// Observe and ShouldIndex are safe for concurrent use with each other and
// with Retune.
type Tuner struct {
	cfg Config

	// mu guards the streaming summaries and window bookkeeping.
	mu     sync.Mutex
	sketch *Sketch
	top    *TopK
	// universe estimates the distinct-key count. It rotates every
	// UniverseWindows retunes, not every retune: the Zipf fit's fixed
	// point is hypersensitive to undercounting the universe, and a
	// single window of one peer's own queries samples the tail far too
	// thinly. Rates age fast, universes age slowly.
	universe    *Distinct
	universeAge int
	curQueries  uint64 // queries in the open window
	prevQuer    uint64 // queries in the retired window
	prevRounds  int    // length of the retired window
	// Distributed top-k traffic in the open/retired windows: queries
	// coordinated and probe legs paid, feeding the model's
	// TopKRound/TopKProbe charge.
	curTopKQueries, prevTopKQueries uint64
	curTopKLegs, prevTopKLegs       uint64
	last                            Decision
	ready                           bool

	// Actuator state, read lock-free on the insert path.
	threshold atomic.Uint64 // sketch-count gate; 0 = no gating yet
	ttl       atomic.Int64  // recommended keyTtl; 0 = none yet

	retunes, gated, allowed, observed atomic.Uint64
}

// NewTuner returns a tuner with the given configuration (zero fields take
// defaults).
func NewTuner(cfg Config) (*Tuner, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sketch, err := NewSketch(cfg.SketchWidth, cfg.SketchDepth)
	if err != nil {
		return nil, err
	}
	top, err := NewTopK(cfg.TopK)
	if err != nil {
		return nil, err
	}
	universe, err := NewDistinct(cfg.DistinctBits)
	if err != nil {
		return nil, err
	}
	return &Tuner{cfg: cfg, sketch: sketch, top: top, universe: universe}, nil
}

// Config returns the effective configuration.
func (t *Tuner) Config() Config { return t.cfg }

// Observe records one query for key — the hot path, O(sketch depth) and
// allocation-free.
func (t *Tuner) Observe(key uint64) {
	t.observed.Add(1)
	t.mu.Lock()
	t.sketch.Observe(key)
	t.top.Observe(key)
	t.universe.Observe(key)
	t.curQueries++
	t.mu.Unlock()
}

// ObserveTopK records one coordinated distributed top-k query and the
// wire legs its round protocol paid. Retune turns the window totals into
// the model's TopKRound (queries per peer per round) and TopKProbe (legs
// per query), so the fitted fMin charges the top-k traffic honestly.
func (t *Tuner) ObserveTopK(legs int) {
	if legs < 0 {
		legs = 0
	}
	t.mu.Lock()
	t.curTopKQueries++
	t.curTopKLegs += uint64(legs)
	t.mu.Unlock()
}

// Count returns key's current windowed query-count estimate from the
// count-min sketch — the term-popularity measure the top-k planner turns
// into probe weights.
func (t *Tuner) Count(key uint64) uint64 {
	t.mu.Lock()
	c := t.sketch.Count(key)
	t.mu.Unlock()
	return c
}

// ShouldIndex is the per-key to-index-or-not decision (§2, applied online):
// it reports whether key's estimated query rate clears the fitted fMin.
// Before the first successful retune every key passes — the system behaves
// exactly like the static policy until the control loop has a model.
func (t *Tuner) ShouldIndex(key uint64) bool {
	th := t.threshold.Load()
	if th <= 1 {
		// No gate yet, or the threshold is below one observation —
		// anything queried at all qualifies.
		t.allowed.Add(1)
		return true
	}
	t.mu.Lock()
	c := t.sketch.Count(key)
	t.mu.Unlock()
	if c >= th {
		t.allowed.Add(1)
		return true
	}
	t.gated.Add(1)
	return false
}

// KeyTtl returns the current recommended expiration time in rounds, with
// ok=false before the first successful retune (keep the configured static
// value until then).
func (t *Tuner) KeyTtl() (int, bool) {
	ttl := t.ttl.Load()
	if ttl <= 0 {
		return 0, false
	}
	return int(ttl), true
}

// Retune closes the current observation window and refits the model: the
// heavy-hitter counts yield the Zipf exponent, the bitmap the distinct-key
// estimate, the window volume the query rate; model.Solve derives fMin and
// keyTtl = 1/fMin from them. The summaries rotate whether or not the fit
// succeeds, so stale traffic ages out even through idle periods.
func (t *Tuner) Retune(in Inputs) (Decision, error) {
	if err := in.validate(); err != nil {
		return Decision{}, err
	}
	if in.Repl > in.Members {
		in.Repl = in.Members
	}

	t.mu.Lock()
	// Rank counts for the exponent fit: the heavy-hitter list names the
	// keys, the sketch supplies their clean one-to-two-window counts
	// (TopK's own counts are geometrically decayed, which distorts a fit).
	counts := make([]int, 0, t.top.Len())
	for _, k := range t.top.Keys() {
		if c := t.sketch.Count(k); c > 0 {
			counts = append(counts, int(c))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	distinctEst := t.universe.Estimate()
	totalQ := t.curQueries + t.prevQuer
	totalRounds := in.WindowRounds + t.prevRounds
	// Rotate: the open window retires, the retired one is forgotten. The
	// universe bitmap turns over on its own, slower cadence.
	t.sketch.Rotate()
	t.top.Decay()
	t.universeAge++
	if t.universeAge >= t.cfg.UniverseWindows {
		t.universe.Rotate()
		t.universeAge = 0
	}
	t.prevQuer, t.curQueries = t.curQueries, 0
	t.prevRounds = in.WindowRounds
	totalTopKQ := t.curTopKQueries + t.prevTopKQueries
	totalTopKLegs := t.curTopKLegs + t.prevTopKLegs
	t.prevTopKQueries, t.curTopKQueries = t.curTopKQueries, 0
	t.prevTopKLegs, t.curTopKLegs = t.curTopKLegs, 0
	t.mu.Unlock()

	if totalQ == 0 {
		return Decision{}, fmt.Errorf("adapt: no queries observed in %d rounds", totalRounds)
	}

	distinct := distinctEst
	if distinct < len(counts) {
		distinct = len(counts)
	}
	if distinct < 2 {
		distinct = 2
	}
	alpha, err := zipf.EstimateAlpha(counts, distinct)
	if err != nil {
		alpha = t.cfg.FallbackAlpha
	}
	fQry := float64(totalQ) / float64(totalRounds) / float64(in.Observers)

	p := model.Params{
		NumPeers: in.Members,
		Keys:     distinct,
		Stor:     in.Capacity,
		Repl:     in.Repl,
		Alpha:    alpha,
		FQry:     fQry,
		FUpd:     0, // the selection algorithm pays no proactive updates
		Env:      in.Env,
		Dup:      t.cfg.Dup,
		Dup2:     t.cfg.Dup2,
	}
	if in.RefreshFanout {
		// The extra write legs of the replica-coherent refresh (the hit
		// peer itself rides the probe's round trip; the other Repl−1
		// members cost one message each).
		p.WriteFanout = float64(in.Repl - 1)
	}
	if totalTopKQ > 0 {
		// Charge the measured top-k traffic: per-peer query rate and the
		// average probe legs one query cost in the window.
		p.TopKRound = float64(totalTopKQ) / float64(totalRounds) / float64(in.Observers)
		p.TopKProbe = float64(totalTopKLegs) / float64(totalTopKQ)
	}
	dist, err := zipf.New(alpha, distinct)
	if err != nil {
		return Decision{}, fmt.Errorf("adapt: %w", err)
	}
	sol, err := model.Solve(p, dist)
	if err != nil {
		return Decision{}, fmt.Errorf("adapt: %w", err)
	}

	d := Decision{
		FMin:          sol.FMin,
		Alpha:         alpha,
		FQry:          fQry,
		DistinctKeys:  distinct,
		WindowQueries: totalQ,
		WindowRounds:  totalRounds,
	}
	// Expected sketch coverage when the gate is consulted mid-window: the
	// just-retired window plus, on average, half the next one. The §5.1.1
	// sensitivity analysis is what makes this approximation safe — ±50%
	// on the threshold barely moves the savings.
	expectedRounds := float64(in.WindowRounds) * 1.5
	switch {
	case math.IsInf(sol.FMin, 1):
		// Broadcasting beats the index outright; hold nothing.
		d.KeyTtl = t.cfg.TTLMin
		d.GateThreshold = gateAll
	case sol.FMin <= 0:
		// Maintenance-free indexing: everything is worth keeping.
		d.KeyTtl = t.cfg.TTLMax
		d.GateThreshold = 0
	default:
		d.KeyTtl = clamp(int(math.Round(1/sol.FMin)), t.cfg.TTLMin, t.cfg.TTLMax)
		d.GateThreshold = uint64(math.Ceil(sol.FMin * expectedRounds * float64(in.Observers) / float64(in.Members)))
	}
	ttlSol, err := model.SolveTTL(p, dist, float64(d.KeyTtl))
	if err != nil {
		return Decision{}, fmt.Errorf("adapt: %w", err)
	}
	d.PredictedHitRate = ttlSol.PIndxd
	d.PredictedIndexSize = ttlSol.IndexSize

	t.threshold.Store(d.GateThreshold)
	t.ttl.Store(int64(d.KeyTtl))
	t.retunes.Add(1)
	t.mu.Lock()
	t.last = d
	t.ready = true
	t.mu.Unlock()
	return d, nil
}

// Snapshot returns the tuner's observable state.
func (t *Tuner) Snapshot() Snapshot {
	t.mu.Lock()
	last, ready := t.last, t.ready
	mem := t.sketch.MemoryBytes() + t.universe.MemoryBytes() + 32*t.cfg.TopK
	t.mu.Unlock()
	return Snapshot{
		Last:        last,
		Ready:       ready,
		Retunes:     t.retunes.Load(),
		Gated:       t.gated.Load(),
		Allowed:     t.allowed.Load(),
		Observed:    t.observed.Load(),
		MemoryBytes: mem,
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
