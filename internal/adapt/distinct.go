package adapt

import (
	"fmt"
	"math"
	"math/bits"
)

// Distinct estimates the number of distinct keys observed over the last
// one-to-two windows by linear counting [Whang et al. 1990]: each key sets
// one bit of an m-bit map, and the estimate is m·ln(m/zeros). For cardinality
// up to about m the relative error is a few percent; beyond that the map
// saturates and the estimate degrades gracefully toward a lower bound, which
// is the safe direction here (a too-small Keys parameter makes the fitted
// scenario index more, never less — no query gets dropped).
//
// Like Sketch it keeps two window generations; the estimate covers their
// union so a key queried last window still counts as part of the universe.
type Distinct struct {
	m    uint64 // bits per window, power of two
	mask uint64
	cur  []uint64
	prev []uint64
}

// NewDistinct returns an estimator with the given bitmap size (rounded up to
// a power of two, at least 64).
func NewDistinct(bitsPerWindow int) (*Distinct, error) {
	if bitsPerWindow < 1 {
		return nil, fmt.Errorf("adapt: distinct bitmap size %d must be positive", bitsPerWindow)
	}
	m := uint64(64)
	for m < uint64(bitsPerWindow) {
		m <<= 1
	}
	return &Distinct{
		m:    m,
		mask: m - 1,
		cur:  make([]uint64, m/64),
		prev: make([]uint64, m/64),
	}, nil
}

// Observe marks key as seen in the current window. Allocation-free.
func (d *Distinct) Observe(key uint64) {
	// A different rotation of mix64 than the sketch rows use, so the two
	// summaries don't share collision patterns.
	b := mix64(key^0x8e5a_2c1f_9d47_6b03) & d.mask
	d.cur[b/64] |= 1 << (b % 64)
}

// Estimate returns the linear-counting estimate over the union of the two
// windows, at least 1 once anything was observed.
func (d *Distinct) Estimate() int {
	occupied := 0
	for i := range d.cur {
		occupied += bits.OnesCount64(d.cur[i] | d.prev[i])
	}
	if occupied == 0 {
		return 0
	}
	zeros := d.m - uint64(occupied)
	if zeros == 0 {
		// Saturated: every slot hit. Report the bitmap size — a lower
		// bound on the truth.
		return int(d.m)
	}
	est := int(math.Round(float64(d.m) * math.Log(float64(d.m)/float64(zeros))))
	if est < occupied {
		est = occupied // estimate can never undercut the occupied slots
	}
	return est
}

// Rotate retires the current window, forgetting the one before it.
func (d *Distinct) Rotate() {
	d.cur, d.prev = d.prev, d.cur
	clear(d.cur)
}

// MemoryBytes returns the bitmap footprint.
func (d *Distinct) MemoryBytes() int {
	return 8 * (len(d.cur) + len(d.prev))
}
