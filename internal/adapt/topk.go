package adapt

import (
	"fmt"
	"sort"
)

// TopK is a space-saving heavy-hitters summary [Metwally et al. 2005]: it
// tracks at most k keys with approximate counts in O(1) amortized time per
// observation and O(k) memory. When a new key arrives at capacity it replaces
// the currently smallest entry, inheriting its count as the error bound —
// the classic guarantee that any key with true count above the minimum
// tracked count is present in the list.
//
// Its purpose here is the Zipf fit: the fitted exponent is dominated by the
// head of the distribution, which is exactly what TopK retains. Counts halve
// at each Decay (called on window rotation), so a shifted workload's new head
// overtakes the old one within a few windows instead of fighting counts
// accumulated since boot.
type TopK struct {
	k    int
	heap []hhEntry      // min-heap ordered by count
	pos  map[uint64]int // key → index in heap
}

// hhEntry is one tracked key.
type hhEntry struct {
	key   uint64
	count uint64
	err   uint64 // count inherited from the displaced entry
}

// NewTopK returns an empty heavy-hitters list of capacity k.
func NewTopK(k int) (*TopK, error) {
	if k < 1 {
		return nil, fmt.Errorf("adapt: top-k capacity %d must be positive", k)
	}
	return &TopK{k: k, heap: make([]hhEntry, 0, k), pos: make(map[uint64]int, k)}, nil
}

// Observe records one occurrence of key. Allocation-free once the list is
// warm (the map and heap are pre-sized to capacity).
func (t *TopK) Observe(key uint64) {
	if i, ok := t.pos[key]; ok {
		t.heap[i].count++
		t.siftDown(i)
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, hhEntry{key: key, count: 1})
		t.pos[key] = len(t.heap) - 1
		t.siftUp(len(t.heap) - 1)
		return
	}
	// Replace the minimum: the newcomer may have occurred up to min times
	// while untracked, so it starts at min+1 with error bound min.
	min := t.heap[0]
	delete(t.pos, min.key)
	t.heap[0] = hhEntry{key: key, count: min.count + 1, err: min.count}
	t.pos[key] = 0
	t.siftDown(0)
}

// Len returns the number of tracked keys.
func (t *TopK) Len() int { return len(t.heap) }

// Counts returns the tracked counts in descending order — the shape
// zipf.EstimateAlpha fits an exponent to. Allocates; retune-path only.
func (t *TopK) Counts() []int {
	out := make([]int, len(t.heap))
	for i, e := range t.heap {
		out[i] = int(e.count)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Keys returns the tracked keys in unspecified order. The Tuner reads the
// clean windowed counts of these keys from the Sketch: the space-saving
// counts decay geometrically, which quantizes small tail counts and biases
// an exponent fit, so TopK serves as the membership list ("which keys are
// heavy") and the sketch as the measure. Allocates; retune-path only.
func (t *TopK) Keys() []uint64 {
	out := make([]uint64, len(t.heap))
	for i, e := range t.heap {
		out[i] = e.key
	}
	return out
}

// Count returns the approximate count of key and whether it is tracked.
func (t *TopK) Count(key uint64) (uint64, bool) {
	i, ok := t.pos[key]
	if !ok {
		return 0, false
	}
	return t.heap[i].count, true
}

// Decay halves every tracked count (and error bound) — exponential aging,
// applied at window rotation. Halving is monotone, so the heap order is
// preserved. Entries decayed to zero stay listed and are displaced first.
func (t *TopK) Decay() {
	for i := range t.heap {
		t.heap[i].count /= 2
		t.heap[i].err /= 2
	}
}

func (t *TopK) less(i, j int) bool { return t.heap[i].count < t.heap[j].count }

func (t *TopK) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i].key] = i
	t.pos[t.heap[j].key] = j
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.heap)
	for {
		smallest := i
		if l := 2*i + 1; l < n && t.less(l, smallest) {
			smallest = l
		}
		if r := 2*i + 2; r < n && t.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}
