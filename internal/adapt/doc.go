// Package adapt is the live query-adaptive control plane: it closes the
// paper's measure → model → actuate loop on every peer, at runtime.
//
// Everything before this package executes a fixed policy — KeyTtl is a
// config knob, and the workload fit (zipf.EstimateAlpha) runs only after
// the fact in reports. adapt makes the title's promise real: each peer
// observes its own query stream in O(1) time and bounded memory, periodically
// fits the paper's scenario to what it saw, and re-derives the two knobs the
// selection algorithm turns —
//
//   - keyTtl, the expiration time attached to inserted and refreshed keys
//     (keyTtl = 1/fMin, §5.1 reason I, via model.SolveTTLAuto); and
//
//   - fMin itself, the indexing threshold of eq. 2, applied per key: a key
//     whose estimated query rate falls below fMin is not inserted after a
//     broadcast — the to-index-or-not decision (§2), finally made online.
//
// The measurement side is three streaming summaries, none of which keeps
// per-key state in a map:
//
//   - Sketch: a count-min sketch with conservative update and two-window
//     rotation, estimating per-key query counts over the recent past.
//   - TopK: a space-saving heavy-hitters list whose counts feed the Zipf
//     exponent fit; counts halve at each window rotation so a shifted
//     workload displaces yesterday's head.
//   - Distinct: a linear-counting bitmap estimating how many distinct keys
//     the stream touched, the Keys parameter of the fitted scenario.
//
// Tuner composes the three behind one mutex-protected hot path (Observe,
// ShouldIndex) and one cold path (Retune). internal/node runs a Tuner per
// peer when Config.Adaptive is set; internal/sim drives one under
// StrategyPartialAdaptive so static and adaptive policies can be A/B-tested
// under the same mid-run popularity shifts.
package adapt
