package adapt

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"pdht/internal/model"
	"pdht/internal/zipf"
)

// testInputs is the sim-style scenario the tuner tests fit against: one
// tuner observes the whole population's query stream.
func testInputs(window int) Inputs {
	return Inputs{Members: 100, Observers: 100, Capacity: 100, Repl: 5, Env: 1.0 / 14, WindowRounds: window}
}

// driveZipf feeds n Zipf-distributed key observations through the tuner.
func driveZipf(t *Tuner, sampler *zipf.Sampler, n int) {
	for i := 0; i < n; i++ {
		t.Observe(uint64(sampler.Sample()))
	}
}

func TestTunerConvergesToModelRecommendation(t *testing.T) {
	const (
		members = 100
		keys    = 500
		fQry    = 0.05
		window  = 400
	)
	dist := zipf.MustNew(1.2, keys)
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(1, 2)))
	tn, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tn.KeyTtl(); ok {
		t.Fatal("KeyTtl ready before any retune")
	}

	in := testInputs(window)
	perWindow := int(members * fQry * window)
	var d Decision
	for w := 0; w < 4; w++ {
		driveZipf(tn, sampler, perWindow)
		d, err = tn.Retune(in)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}

	// Ground truth: SolveTTLAuto at the *true* scenario parameters. The
	// tuner only sees the stream — its distinct-key estimate misses never-
	// queried tail keys — yet its recommendation must land close.
	p := model.Params{NumPeers: members, Keys: keys, Stor: 100, Repl: 5,
		Alpha: 1.2, FQry: fQry, Env: 1.0 / 14, Dup: 1.8, Dup2: 1.8}
	sol, _, err := model.SolveTTLAuto(p, dist)
	if err != nil {
		t.Fatal(err)
	}
	wantTtl := model.IdealKeyTtl(sol)
	if rel := math.Abs(float64(d.KeyTtl)-wantTtl) / wantTtl; rel > 0.25 {
		t.Fatalf("tuned keyTtl %d is %.0f%% off the model recommendation %.0f", d.KeyTtl, 100*rel, wantTtl)
	}
	if math.Abs(d.Alpha-1.2) > 0.15 {
		t.Fatalf("fitted alpha %.3f far from true 1.2", d.Alpha)
	}
	if math.Abs(d.FQry-fQry)/fQry > 0.05 {
		t.Fatalf("fitted fQry %.4f far from true %.4f", d.FQry, fQry)
	}
	if ttl, ok := tn.KeyTtl(); !ok || ttl != d.KeyTtl {
		t.Fatalf("KeyTtl() = (%d,%v), want (%d,true)", ttl, ok, d.KeyTtl)
	}
	snap := tn.Snapshot()
	if !snap.Ready || snap.Retunes != 4 {
		t.Fatalf("snapshot = %+v, want ready with 4 retunes", snap)
	}
	if snap.MemoryBytes == 0 || snap.MemoryBytes > 1<<21 {
		t.Fatalf("summary memory %d bytes outside the bounded range", snap.MemoryBytes)
	}
}

func TestTunerGatesBelowFMin(t *testing.T) {
	// A high-maintenance scenario (env = 1) at small scale: fMin is large
	// enough that tail keys must be gated while head keys pass.
	const (
		members = 20
		keys    = 200
		window  = 100
	)
	dist := zipf.MustNew(1.2, keys)
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(5, 6)))
	tn, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Before any retune every key passes — static behavior until the
	// control loop has a model.
	if !tn.ShouldIndex(12345) {
		t.Fatal("ShouldIndex gated before the first retune")
	}

	in := Inputs{Members: members, Observers: members, Capacity: 64, Repl: 4, Env: 1, WindowRounds: window}
	var d Decision
	for w := 0; w < 3; w++ {
		driveZipf(tn, sampler, 20*window)
		d, err = tn.Retune(in)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	if d.FMin <= 0 || math.IsInf(d.FMin, 1) {
		t.Fatalf("fitted fMin = %v, want positive and finite", d.FMin)
	}
	if d.GateThreshold < 2 {
		t.Fatalf("gate threshold %d cannot gate anything; scenario mis-sized", d.GateThreshold)
	}
	if !tn.ShouldIndex(0) { // rank-1 key under the identity mapping
		t.Fatal("head key gated")
	}
	if tn.ShouldIndex(999999) { // never-queried key
		t.Fatal("unseen key passed the fMin gate")
	}
	snap := tn.Snapshot()
	if snap.Allowed == 0 || snap.Gated == 0 {
		t.Fatalf("gate counters = %+v, want both nonzero", snap)
	}
}

func TestTunerNoTrafficAndRecovery(t *testing.T) {
	tn, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := testInputs(100)
	if _, err := tn.Retune(in); err == nil {
		t.Fatal("retune over an idle window succeeded, want an error")
	}
	// Traffic resumes: the next retune fits again.
	dist := zipf.MustNew(1.2, 100)
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(9, 9)))
	driveZipf(tn, sampler, 2000)
	if _, err := tn.Retune(in); err != nil {
		t.Fatalf("retune after traffic resumed: %v", err)
	}
}

func TestTunerEnvZeroRecommendsMaxTTLNoGating(t *testing.T) {
	tn, err := NewTuner(Config{TTLMax: 5000})
	if err != nil {
		t.Fatal(err)
	}
	dist := zipf.MustNew(1.2, 100)
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(2, 3)))
	driveZipf(tn, sampler, 2000)
	in := testInputs(100)
	in.Env = 0 // maintenance-free: holding an index entry costs nothing
	d, err := tn.Retune(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.KeyTtl != 5000 {
		t.Fatalf("keyTtl = %d, want TTLMax 5000 when indexing is free", d.KeyTtl)
	}
	if d.GateThreshold > 1 {
		t.Fatalf("gate threshold = %d, want no gating when fMin is zero", d.GateThreshold)
	}
	if !tn.ShouldIndex(999999) {
		t.Fatal("key gated under a zero fMin")
	}
}

func TestTunerInputValidation(t *testing.T) {
	tn, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	tn.Observe(1)
	bad := []Inputs{
		{Members: 1, Observers: 1, Capacity: 10, Repl: 1, WindowRounds: 10},
		{Members: 5, Observers: 0, Capacity: 10, Repl: 1, WindowRounds: 10},
		{Members: 5, Observers: 1, Capacity: 0, Repl: 1, WindowRounds: 10},
		{Members: 5, Observers: 1, Capacity: 10, Repl: 0, WindowRounds: 10},
		{Members: 5, Observers: 1, Capacity: 10, Repl: 1, WindowRounds: 0},
		{Members: 5, Observers: 1, Capacity: 10, Repl: 1, Env: -1, WindowRounds: 10},
	}
	for i, in := range bad {
		if _, err := tn.Retune(in); err == nil {
			t.Fatalf("inputs %d (%+v) accepted, want error", i, in)
		}
	}
	if _, err := NewTuner(Config{TTLMin: 10, TTLMax: 5}); err == nil {
		t.Fatal("inverted TTL clamp accepted")
	}
}

// TestTunerConcurrency exercises Observe/ShouldIndex/Retune under the race
// detector — the exact interleaving a live node produces.
func TestTunerConcurrency(t *testing.T) {
	tn, err := NewTuner(Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := testInputs(50)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed^7))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.IntN(300))
				tn.Observe(k)
				if i%7 == 0 {
					tn.ShouldIndex(k)
				}
			}
		}(uint64(g + 1))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tn.Retune(in)
		}
	}()
	wg.Wait()
	if got := tn.Snapshot().Observed; got != 20000 {
		t.Fatalf("observed %d queries, want 20000", got)
	}
}
