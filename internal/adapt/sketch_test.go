package adapt

import (
	"math"
	"math/rand/v2"
	"testing"

	"pdht/internal/zipf"
)

func TestSketchExactOnSparseStream(t *testing.T) {
	s, err := NewSketch(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Far fewer keys than counters: estimates should be exact.
	for k := uint64(0); k < 100; k++ {
		for i := uint64(0); i <= k; i++ {
			s.Observe(k)
		}
	}
	for k := uint64(0); k < 100; k++ {
		if got := s.Count(k); got != k+1 {
			t.Fatalf("Count(%d) = %d, want %d", k, got, k+1)
		}
	}
	if got := s.Count(999999); got != 0 {
		t.Fatalf("Count(unseen) = %d, want 0", got)
	}
}

func TestSketchNeverUndercounts(t *testing.T) {
	s, err := NewSketch(256, 4) // deliberately tight: collisions guaranteed
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[uint64]uint64)
	for i := 0; i < 20000; i++ {
		k := uint64(rng.IntN(2000))
		truth[k]++
		s.Observe(k)
	}
	for k, want := range truth {
		if got := s.Count(k); got < want {
			t.Fatalf("Count(%d) = %d undercounts true %d", k, got, want)
		}
	}
}

func TestSketchRotationForgetsOldTraffic(t *testing.T) {
	s, err := NewSketch(1<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	const hot = uint64(42)
	for i := 0; i < 100; i++ {
		s.Observe(hot)
	}
	if got := s.Count(hot); got != 100 {
		t.Fatalf("pre-rotation Count = %d, want 100", got)
	}
	s.Rotate() // hot's counts now live in the previous window
	if got := s.Count(hot); got != 100 {
		t.Fatalf("after one rotation Count = %d, want 100 (previous window still visible)", got)
	}
	s.Observe(hot)
	s.Rotate() // original 100 forgotten; the single fresh observation retires
	if got := s.Count(hot); got != 1 {
		t.Fatalf("after two rotations Count = %d, want 1", got)
	}
	s.Rotate()
	if got := s.Count(hot); got != 0 {
		t.Fatalf("after three rotations Count = %d, want 0", got)
	}
}

func TestSketchHotPathAllocationFree(t *testing.T) {
	s, err := NewSketch(1<<12, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := uint64(7)
	if allocs := testing.AllocsPerRun(1000, func() { s.Observe(k); k += 0x9e37 }); allocs != 0 {
		t.Fatalf("Observe allocates %v times per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { _ = s.Count(k) }); allocs != 0 {
		t.Fatalf("Count allocates %v times per call, want 0", allocs)
	}
}

func TestTopKFindsHeavyHitters(t *testing.T) {
	top, err := NewTopK(16)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := zipf.New(1.2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(3, 4)))
	truth := make(map[uint64]uint64)
	for i := 0; i < 50000; i++ {
		k := uint64(sampler.Sample())
		truth[k]++
		top.Observe(k)
	}
	// The top few ranks dominate a Zipf(1.2) stream; they must be tracked
	// with counts no lower than the truth (space-saving overestimates).
	for rank := uint64(0); rank < 5; rank++ {
		c, ok := top.Count(rank)
		if !ok {
			t.Fatalf("rank %d not tracked", rank)
		}
		if c < truth[rank] {
			t.Fatalf("rank %d count %d below true %d", rank, c, truth[rank])
		}
	}
	counts := top.Counts()
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("Counts not descending at %d: %v", i, counts)
		}
	}
}

func TestTopKDecayDisplacesOldHead(t *testing.T) {
	top, err := NewTopK(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		top.Observe(1) // yesterday's hot key
	}
	// Several decayed windows in which key 2 is the only traffic.
	for w := 0; w < 12; w++ {
		top.Decay()
		for i := 0; i < 50; i++ {
			top.Observe(2)
		}
	}
	c1, _ := top.Count(1)
	c2, ok := top.Count(2)
	if !ok || c2 <= c1 {
		t.Fatalf("new head (count %d) has not overtaken the decayed old head (count %d)", c2, c1)
	}
}

func TestDistinctEstimate(t *testing.T) {
	d, err := NewDistinct(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Estimate(); got != 0 {
		t.Fatalf("empty Estimate = %d, want 0", got)
	}
	const n = 2000
	for k := uint64(0); k < n; k++ {
		d.Observe(k)
		d.Observe(k) // repeats must not inflate the estimate
	}
	got := d.Estimate()
	if math.Abs(float64(got)-n)/n > 0.1 {
		t.Fatalf("Estimate = %d, want within 10%% of %d", got, n)
	}
	// Rotation keeps the previous window visible, then forgets it.
	d.Rotate()
	if got := d.Estimate(); math.Abs(float64(got)-n)/n > 0.1 {
		t.Fatalf("after one rotation Estimate = %d, want ≈%d", got, n)
	}
	d.Rotate()
	if got := d.Estimate(); got != 0 {
		t.Fatalf("after two rotations Estimate = %d, want 0", got)
	}
}
