package adapt

import (
	"math/rand/v2"
	"testing"

	"pdht/internal/zipf"
)

// BenchmarkSketchObserve prices the per-query hot path of the control plane:
// one conservative-update count-min observation. It must be O(1) in the
// number of keys ever seen and allocation-free — the baselines the CI
// benchmark step records.
func BenchmarkSketchObserve(b *testing.B) {
	s, err := NewSketch(1<<14, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

// BenchmarkTunerObserve prices the full per-query observation: sketch +
// heavy hitters + distinct bitmap behind the tuner mutex.
func BenchmarkTunerObserve(b *testing.B) {
	tn, err := NewTuner(Config{})
	if err != nil {
		b.Fatal(err)
	}
	// Zipf-shaped keys, precomputed so the sampler is not in the loop.
	dist := zipf.MustNew(1.2, 4096)
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(1, 2)))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		keys[i] = uint64(sampler.Sample())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.Observe(keys[i&(len(keys)-1)])
	}
}

// BenchmarkTunerDecide prices the actuator consult: one ShouldIndex call
// with an armed gate (the post-broadcast to-index-or-not decision).
func BenchmarkTunerDecide(b *testing.B) {
	tn, err := NewTuner(Config{})
	if err != nil {
		b.Fatal(err)
	}
	// A compact key universe keeps the per-key holding cost — and with it
	// fMin and the gate threshold — high enough that the gate is armed.
	dist := zipf.MustNew(1.2, 256)
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(3, 4)))
	keys := make([]uint64, 1<<16)
	for i := range keys {
		k := uint64(sampler.Sample())
		keys[i] = k
		tn.Observe(k)
	}
	in := Inputs{Members: 20, Observers: 20, Capacity: 64, Repl: 4, Env: 1, WindowRounds: 100}
	d, err := tn.Retune(in)
	if err != nil {
		b.Fatal(err)
	}
	if d.GateThreshold < 2 {
		b.Fatalf("gate threshold %d: the benchmark would measure the unarmed fast path", d.GateThreshold)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.ShouldIndex(keys[i&(len(keys)-1)])
	}
}
