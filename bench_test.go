// Benchmarks, one per table/figure of the paper plus the validation and
// ablation experiments of DESIGN.md. Each benchmark regenerates its
// artifact from scratch and attaches the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` doubles as a smoke-test of the
// whole reproduction. The rendered tables themselves come from
// `go run ./cmd/pdht-bench`.
package pdht_test

import (
	"testing"

	"pdht/internal/experiments"
	"pdht/internal/model"
	"pdht/internal/sim"
)

// benchSimConfig is the simulator scale used by the sim-backed benchmarks:
// Table 1 proportions at 1/25 population, small enough for -bench=. to
// finish in seconds per benchmark.
func benchSimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Peers = 800
	cfg.Keys = 1600
	cfg.Repl = 8
	cfg.Rounds = 150
	cfg.WarmupRounds = 40
	return cfg
}

// BenchmarkTable1Scenario solves the full model at the Table 1 scenario —
// the computation every other figure builds on.
func BenchmarkTable1Scenario(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var sol model.Solution
	for i := 0; i < b.N; i++ {
		var err error
		sol, err = model.Solve(p, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sol.MaxRank), "maxRank")
	b.ReportMetric(sol.FMin, "fMin")
}

// BenchmarkFig1CostCurves regenerates Figure 1: the three strategy cost
// curves across the frequency grid.
func BenchmarkFig1CostCurves(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var pts []model.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig1(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].IndexAll, "indexAll@1/30")
	b.ReportMetric(pts[0].NoIndex, "noIndex@1/30")
	b.ReportMetric(pts[0].Partial, "partial@1/30")
}

// BenchmarkFig2Savings regenerates Figure 2: savings of ideal partial
// indexing against both baselines.
func BenchmarkFig2Savings(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var pts []model.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].SavingsVsNoIndex, "sav-vs-noIndex@1/30")
	b.ReportMetric(pts[len(pts)-1].SavingsVsIndexAll, "sav-vs-indexAll@1/7200")
}

// BenchmarkFig3IndexSize regenerates Figure 3: index-size fraction and hit
// probability.
func BenchmarkFig3IndexSize(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var pts []model.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].IndexFraction, "idxfrac@1/30")
	b.ReportMetric(pts[len(pts)-1].IndexFraction, "idxfrac@1/7200")
	b.ReportMetric(pts[len(pts)-1].PIndxd, "pIndxd@1/7200")
}

// BenchmarkFig4SelectionSavings regenerates Figure 4: savings of the TTL
// selection algorithm.
func BenchmarkFig4SelectionSavings(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var pts []model.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].TTLSavingsVsNoIndex, "sav-vs-noIndex@1/30")
	b.ReportMetric(pts[3].TTLSavingsVsIndexAll, "sav-vs-indexAll@1/300")
}

// BenchmarkTTLSensitivity regenerates the §5.1.1 sensitivity analysis.
func BenchmarkTTLSensitivity(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var pts []model.TTLSensitivityPoint
	for i := 0; i < b.N; i++ {
		var err error
		_, pts, err = experiments.TTLSens(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, pt := range pts {
		if pt.DeltaSavings > worst {
			worst = pt.DeltaSavings
		}
	}
	b.ReportMetric(worst, "worst-Δsavings")
}

// BenchmarkAlphaSweep regenerates ablation A2: the Zipf-exponent sweep.
func BenchmarkAlphaSweep(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AlphaSweep(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorVsModel runs experiment V1: all four strategies
// through the message-level simulator.
func BenchmarkSimulatorVsModel(b *testing.B) {
	cfg := benchSimConfig()
	b.ReportAllocs()
	var rows []experiments.ValidationRow
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Validate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Ratio, "ratio-"+r.Strategy.String())
	}
}

// BenchmarkAdaptation runs experiment S2: the distribution-shift recovery.
func BenchmarkAdaptation(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Rounds = 300
	cfg.KeyTtl = 80
	cfg.TraceEvery = 30
	b.ReportAllocs()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Adaptation(cfg, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.HitRate, "hit-rate")
}

// BenchmarkDHTBackends runs ablation A1: trie versus ring under the
// selection algorithm.
func BenchmarkDHTBackends(b *testing.B) {
	cfg := benchSimConfig()
	b.ReportAllocs()
	var rows []sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.Backends(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].HitRate, "hit-trie")
	b.ReportMetric(rows[1].HitRate, "hit-ring")
}

// BenchmarkSelfTuning runs ablation A3: the online keyTtl estimator versus
// the model-derived setting.
func BenchmarkSelfTuning(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Rounds = 300
	b.ReportAllocs()
	var rows []sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.SelfTuning(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].KeyTtlUsed), "ttl-model")
	b.ReportMetric(float64(rows[1].KeyTtlUsed), "ttl-tuned")
}

// BenchmarkKarySweep runs ablation A5: the footnote-3 k-ary key-space
// generalization.
func BenchmarkKarySweep(b *testing.B) {
	p := model.DefaultScenario()
	b.ReportAllocs()
	var best model.KaryPoint
	for i := 0; i < b.N; i++ {
		var err error
		best, err = model.OptimalKary(p, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(best.K), "optimal-k")
}

// BenchmarkMaintenanceTradeoff runs ablation A4: probe rate versus routing
// quality under churn.
func BenchmarkMaintenanceTradeoff(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Rounds = 120
	b.ReportAllocs()
	var rows []sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, rows, err = experiments.MaintenanceTradeoff(cfg, []float64{0, 1.0 / 14.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].MeanLookupHops, "hops-env0")
	b.ReportMetric(rows[1].MeanLookupHops, "hops-env1/14")
}

// BenchmarkCalibration runs experiment A6: recovering the model's inputs
// from the live query stream.
func BenchmarkCalibration(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Rounds = 300
	b.ReportAllocs()
	var res experiments.CalibrationResult
	for i := 0; i < b.N; i++ {
		var err error
		_, res, err = experiments.Calibration(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EstimatedAlpha, "alpha-hat")
	b.ReportMetric(res.CalibratedTtl, "keyTtl-hat")
}

// BenchmarkSimulatedSweepTTL measures the simulated Fig-4 counterpart at
// two frequencies (the full grid is a pdht-bench job, not a benchmark).
func BenchmarkSimulatedSweepTTL(b *testing.B) {
	cfg := benchSimConfig()
	cfg.Strategy = sim.StrategyPartialTTL
	freqs := []float64{1.0 / 30.0, 1.0 / 600.0}
	b.ReportAllocs()
	var results []sim.Result
	for i := 0; i < b.N; i++ {
		var err error
		_, results, err = experiments.SimSweep(cfg, freqs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(results[0].MsgPerRound, "msg@1/30")
	b.ReportMetric(results[1].MsgPerRound, "msg@1/600")
}
