package pdht_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

// ExampleOpen boots a two-node cluster over TCP loopback, connects a
// non-serving client through it, and resolves a batch of keys with one
// wire round trip per destination peer. It is the embed story end to end:
// no flags, no daemons — Open, Publish, QueryMany, Close.
func ExampleOpen() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A member node seeding a fresh cluster, and a second member joining
	// through it. In production these run in different processes.
	seed, err := pdht.Open(ctx, pdht.WithListen("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	peer, err := pdht.Open(ctx, pdht.WithSeeds(seed.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()

	// The peer hosts some content — the keys broadcasts can resolve.
	if err := peer.PublishMany(ctx, []pdht.ClientKV{
		{Key: pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"}), Value: 2001},
		{Key: pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"}), Value: 2002},
	}); err != nil {
		log.Fatal(err)
	}

	// A lightweight client: speaks the wire protocol, serves nothing,
	// appears in no membership view.
	cl, err := pdht.Open(ctx, pdht.WithClientOnly(), pdht.WithSeeds(seed.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Batched resolution: keys grouped by responsible peer, one OpBatch
	// request per destination, per-key results.
	keys := []uint64{
		pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"}),
		pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"}),
	}
	results, err := cl.QueryMany(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("answered=%v value=%d\n", res.Answered, res.Value)
	}

	// Output:
	// answered=true value=2001
	// answered=true value=2002
}

// ExampleWithTraceHook attaches a trace hook to a member node and shows the
// per-leg record of each query: the cold query walks the whole selection
// algorithm — index probe, broadcast, insert — and the warm repeat is a
// single probe hit. On a one-node cluster every leg is local, so the
// timeline is deterministic.
func ExampleWithTraceHook() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var traces []pdht.QueryTrace
	nd, err := pdht.Open(ctx,
		pdht.WithTraceHook(func(qt pdht.QueryTrace) { traces = append(traces, qt) }))
	if err != nil {
		log.Fatal(err)
	}
	defer nd.Close()

	key := pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"})
	if err := nd.Publish(ctx, key, 2001); err != nil {
		log.Fatal(err)
	}
	if _, err := nd.Query(ctx, key); err != nil { // cold: miss → broadcast → insert
		log.Fatal(err)
	}
	if _, err := nd.Query(ctx, key); err != nil { // warm: index hit
		log.Fatal(err)
	}

	for i, qt := range traces {
		fmt.Printf("query %d: %s —", i+1, qt.Outcome)
		for _, leg := range qt.Legs {
			fmt.Printf(" %s:%s", leg.Name, leg.Outcome)
		}
		fmt.Println()
	}

	// Output:
	// query 1: broadcast — probe:miss broadcast:answered insert:ok
	// query 2: hit — probe:hit
}

// ExampleClient_QueryMany runs batched reads against a replicated cluster
// and shows what replication buys: with replica sets of 2, killing the
// node that answered a key leaves the key readable — the next batch fails
// over to the surviving replica instead of losing the entry.
func ExampleClient_QueryMany() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A 3-member cluster with 2-way replication of every index entry.
	// All members host the content, so broadcasts can resolve misses.
	opts := []pdht.ClientOption{pdht.WithReplication(2), pdht.WithRoundDuration(100 * time.Millisecond)}
	seed, err := pdht.Open(ctx, opts...)
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	byAddr := map[string]*pdht.Client{seed.Addr(): seed}
	for i := 0; i < 2; i++ {
		m, err := pdht.Open(ctx, append(opts, pdht.WithSeeds(seed.Addr()))...)
		if err != nil {
			log.Fatal(err)
		}
		defer m.Close()
		byAddr[m.Addr()] = m
	}
	// Wait for gossip to converge: replica placement is computed from the
	// membership view, so writes should start once every member sees all 3.
	for converged := false; !converged; time.Sleep(10 * time.Millisecond) {
		converged = true
		for _, m := range byAddr {
			if len(m.Members()) != 3 {
				converged = false
			}
		}
	}
	keys := []uint64{
		pdht.QueryKey(pdht.Predicate{Element: "author", Value: "K. Aberer"}),
		pdht.QueryKey(pdht.Predicate{Element: "size", Value: "42k"}),
	}
	for _, m := range byAddr {
		if err := m.PublishMany(ctx, []pdht.ClientKV{{Key: keys[0], Value: 1}, {Key: keys[1], Value: 2}}); err != nil {
			log.Fatal(err)
		}
	}

	cl, err := pdht.Open(ctx, append(opts, pdht.WithClientOnly(), pdht.WithSeeds(seed.Addr()))...)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// First batch: misses resolve by broadcast and the entries are
	// inserted at each key's 2-member replica set. Second batch: index
	// hits, one OpBatch round trip per destination peer.
	if _, err := cl.QueryMany(ctx, keys); err != nil {
		log.Fatal(err)
	}
	warm, err := cl.QueryMany(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm: answered=%v,%v from index=%v,%v\n",
		warm[0].Answered, warm[1].Answered, warm[0].FromIndex, warm[1].FromIndex)

	// Kill the member that answered the first key. Its replica has the
	// only surviving copy — the next batch reads it with no broadcast.
	if m := byAddr[warm[0].AnsweredBy]; m != nil {
		m.Close()
	}
	after, err := cl.QueryMany(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after kill: answered=%v,%v values=%d,%d\n",
		after[0].Answered, after[1].Answered, after[0].Value, after[1].Value)

	// Output:
	// warm: answered=true,true from index=true,true
	// after kill: answered=true,true values=1,2
}

// ExampleClient_QueryTopK runs one distributed top-k query over a 2-node
// cluster: the seed hosts an article matching all three terms, the peer
// an article matching two, and the ranking orders them by score — the sum
// of matched term weights. With every peer probed and drained in the
// first round, Early stays false; see cmd/pdht-node -demo-topk for the
// warm-plan run where the threshold skips work.
func ExampleClient_QueryTopK() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	seed, err := pdht.Open(ctx, pdht.WithListen("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	peer, err := pdht.Open(ctx, pdht.WithSeeds(seed.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()

	// One term key per predicate; a document "matches" a term when its
	// hosting peer published it under that key.
	terms := []uint64{
		pdht.QueryKey(pdht.Predicate{Element: "title", Value: "weather"}),
		pdht.QueryKey(pdht.Predicate{Element: "title", Value: "crete"}),
		pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"}),
	}
	kvs := make([]pdht.ClientKV, len(terms))
	for i, term := range terms {
		kvs[i] = pdht.ClientKV{Key: term, Value: 301} // article 301: all 3 terms
	}
	if err := seed.PublishMany(ctx, kvs); err != nil {
		log.Fatal(err)
	}
	if err := peer.PublishMany(ctx, []pdht.ClientKV{
		{Key: terms[0], Value: 302}, // article 302: 2 of 3 terms
		{Key: terms[1], Value: 302},
	}); err != nil {
		log.Fatal(err)
	}

	res, err := seed.QueryTopK(ctx, terms, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, e := range res.Entries {
		fmt.Printf("#%d article %d (score %.1f)\n", i+1, e.Doc, e.Score)
	}
	fmt.Printf("early=%v\n", res.Early)

	// Output:
	// #1 article 301 (score 3.0)
	// #2 article 302 (score 2.0)
	// early=false
}
