package pdht_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"pdht"
)

// ExampleOpen boots a two-node cluster over TCP loopback, connects a
// non-serving client through it, and resolves a batch of keys with one
// wire round trip per destination peer. It is the embed story end to end:
// no flags, no daemons — Open, Publish, QueryMany, Close.
func ExampleOpen() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A member node seeding a fresh cluster, and a second member joining
	// through it. In production these run in different processes.
	seed, err := pdht.Open(ctx, pdht.WithListen("127.0.0.1:0"))
	if err != nil {
		log.Fatal(err)
	}
	defer seed.Close()
	peer, err := pdht.Open(ctx, pdht.WithSeeds(seed.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer peer.Close()

	// The peer hosts some content — the keys broadcasts can resolve.
	if err := peer.PublishMany(ctx, []pdht.ClientKV{
		{Key: pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"}), Value: 2001},
		{Key: pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"}), Value: 2002},
	}); err != nil {
		log.Fatal(err)
	}

	// A lightweight client: speaks the wire protocol, serves nothing,
	// appears in no membership view.
	cl, err := pdht.Open(ctx, pdht.WithClientOnly(), pdht.WithSeeds(seed.Addr()))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Batched resolution: keys grouped by responsible peer, one OpBatch
	// request per destination, per-key results.
	keys := []uint64{
		pdht.QueryKey(pdht.Predicate{Element: "title", Value: "Weather Iráklion"}),
		pdht.QueryKey(pdht.Predicate{Element: "date", Value: "2004/03/14"}),
	}
	results, err := cl.QueryMany(ctx, keys)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		fmt.Printf("answered=%v value=%d\n", res.Answered, res.Value)
	}

	// Output:
	// answered=true value=2001
	// answered=true value=2002
}
