# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml); keeping them here means the local invocation
# and the gate can never drift apart.

# The model-backed experiments: deterministic, sub-second each, no
# simulator population to churn — the stable subset the perf trajectory
# records on every run. The sim-backed experiments (validate, sweep,
# adapt, ...) stay interactive-only; they are minutes, not seconds. topk
# is the exception: its A/B is pinned to a small fixed population, so it
# stays sub-second too.
BENCH_EXPERIMENTS := table1 fig1 fig2 fig3 fig4 ttlsens alpha kary topk store viewdelta chaos

.PHONY: all build test race bench fmt vet

all: build test

build:
	go build ./...

test:
	go test ./...

# The live subsystem under the race detector — the CI race matrix.
race:
	go test -race ./client/ ./internal/adapt/ ./internal/chaos/ \
		./internal/gossip/... ./internal/node/ ./internal/obs/ \
		./internal/replica/ ./internal/store/ ./internal/topk/ \
		./internal/transport/ ./cmd/pdht-node/

# The perf trajectory artifact: one JSON object per experiment table, in
# the {title, header, rows} schema pdht-bench -format json emits, written
# to BENCH_node.json at the repo root so successive PRs can be charted
# against each other.
bench:
	@: > BENCH_node.json
	@for e in $(BENCH_EXPERIMENTS); do \
		echo "bench: $$e"; \
		go run ./cmd/pdht-bench -experiment $$e -format json \
			| grep -v '^$$' >> BENCH_node.json || exit 1; \
	done
	@echo "wrote BENCH_node.json ($$(wc -l < BENCH_node.json) tables)"

fmt:
	gofmt -l .

vet:
	go vet ./...
