package pdht_test

import (
	"fmt"
	"testing"

	"pdht"
)

func TestPublicModelSurface(t *testing.T) {
	s := pdht.DefaultScenario()
	sol, err := pdht.Solve(s)
	if err != nil {
		t.Fatal(err)
	}
	if sol.MaxRank <= 0 || sol.MaxRank > s.Keys {
		t.Errorf("MaxRank = %d", sol.MaxRank)
	}
	partial := pdht.PartialCost(sol)
	if partial >= pdht.IndexAllCost(s) || partial >= pdht.NoIndexCost(s) {
		t.Error("partial indexing should beat both baselines at 1/30")
	}
	if sav := pdht.Savings(partial, pdht.NoIndexCost(s)); sav <= 0 || sav >= 1 {
		t.Errorf("savings = %v", sav)
	}
}

func TestPublicSweepAndSensitivity(t *testing.T) {
	pts, err := pdht.Sweep(pdht.DefaultScenario(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(pdht.FrequencyGrid()) {
		t.Fatalf("sweep has %d points", len(pts))
	}
	sens, err := pdht.TTLSensitivity(pdht.DefaultScenario(), pdht.FrequencyGrid()[:1], []float64{-0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != 2 {
		t.Fatalf("sensitivity has %d points", len(sens))
	}
}

func TestPublicTTLSurface(t *testing.T) {
	s := pdht.DefaultScenario()
	sol, ttl, err := pdht.SolveTTLAuto(s)
	if err != nil {
		t.Fatal(err)
	}
	if ttl.KeyTtl <= 0 {
		t.Errorf("KeyTtl = %v", ttl.KeyTtl)
	}
	if want := pdht.IdealKeyTtl(sol); ttl.KeyTtl != want {
		t.Errorf("KeyTtl %v ≠ IdealKeyTtl %v", ttl.KeyTtl, want)
	}
	explicit, err := pdht.SolveTTL(s, ttl.KeyTtl)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Cost != ttl.Cost {
		t.Errorf("explicit TTL solve differs: %v vs %v", explicit.Cost, ttl.Cost)
	}
}

func TestPublicSimulation(t *testing.T) {
	cfg := pdht.DefaultSimConfig()
	cfg.Strategy = pdht.StrategyPartialTTL
	cfg.Peers = 500
	cfg.Keys = 1000
	cfg.Repl = 10
	cfg.Rounds = 60
	cfg.WarmupRounds = 20
	res, err := pdht.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Answered != res.Queries {
		t.Errorf("answered %d of %d", res.Answered, res.Queries)
	}
}

func TestPublicQueryKeys(t *testing.T) {
	k1 := pdht.QueryKey(
		pdht.Predicate{Element: "title", Value: "Weather Iráklion"},
		pdht.Predicate{Element: "date", Value: "2004/03/14"},
	)
	k1Reordered := pdht.QueryKey(
		pdht.Predicate{Element: "date", Value: "2004/03/14"},
		pdht.Predicate{Element: "title", Value: "Weather Iráklion"},
	)
	if k1 != k1Reordered {
		t.Error("predicate order changed the key")
	}
	k2 := pdht.QueryKey(pdht.Predicate{Element: "size", Value: "2405"})
	if k1 == k2 {
		t.Error("distinct queries collided")
	}
}

func TestPublicCorpus(t *testing.T) {
	arts := pdht.GenerateArticles(10, 42)
	if len(arts) != 10 {
		t.Fatalf("got %d articles", len(arts))
	}
	keys := arts[0].Keys(20)
	if len(keys) != 20 {
		t.Errorf("article produced %d keys, want 20", len(keys))
	}
}

func TestPublicEstimateAlpha(t *testing.T) {
	cfg := pdht.DefaultSimConfig()
	cfg.Strategy = pdht.StrategyPartialTTL
	cfg.Peers = 800
	cfg.Keys = 1600
	cfg.Repl = 8
	cfg.Rounds = 200
	cfg.WarmupRounds = 40
	cfg.CollectKeyCounts = true
	res, err := pdht.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := pdht.EstimateAlpha(res.KeyQueryCounts, cfg.Keys)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 1.0 || alpha > 1.45 {
		t.Errorf("estimated α = %v from an α = 1.2 workload", alpha)
	}
}

func TestPublicParseQuery(t *testing.T) {
	q, err := pdht.ParseQuery("title=Weather Iráklion AND date=2004/03/14")
	if err != nil {
		t.Fatal(err)
	}
	constructed := pdht.QueryKey(
		pdht.Predicate{Element: "title", Value: "Weather Iráklion"},
		pdht.Predicate{Element: "date", Value: "2004/03/14"},
	)
	if uint64(q.Key()) != constructed {
		t.Error("parsed and constructed keys differ")
	}
	if _, err := pdht.ParseQuery("no-equals-sign"); err == nil {
		t.Error("malformed query accepted")
	}
}

// ExampleParseQuery shows the paper's key1/key2 example end to end.
func ExampleParseQuery() {
	key1, _ := pdht.ParseQuery("title=Weather Iráklion AND date=2004/03/14")
	key2, _ := pdht.ParseQuery("size=2405")
	fmt.Println(key1.Canonical())
	fmt.Println(key2.Canonical())
	// Output:
	// date=2004/03/14&title=weather iráklion
	// size=2405
}

// ExampleSavings shows the headline numbers of Figure 2.
func ExampleSavings() {
	s := pdht.DefaultScenario()
	sol, _ := pdht.Solve(s)
	partial := pdht.PartialCost(sol)
	fmt.Printf("vs broadcast-everything: %.2f\n", pdht.Savings(partial, pdht.NoIndexCost(s)))
	fmt.Printf("vs index-everything:     %.2f\n", pdht.Savings(partial, pdht.IndexAllCost(s)))
	// Output:
	// vs broadcast-everything: 0.95
	// vs index-everything:     0.11
}

// ExampleSolve demonstrates the to-index-or-not decision of Section 2.
func ExampleSolve() {
	s := pdht.DefaultScenario() // Table 1 of the paper
	sol, err := pdht.Solve(s)
	if err != nil {
		panic(err)
	}
	fmt.Printf("broadcast search costs %.0f messages, index search %.1f\n",
		sol.CSUnstr, sol.CSIndx)
	fmt.Printf("keys worth indexing: %d of %d\n", sol.MaxRank, s.Keys)
	// Output:
	// broadcast search costs 720 messages, index search 6.8
	// keys worth indexing: 25610 of 40000
}

func TestPublicTuner(t *testing.T) {
	tn, err := pdht.NewTuner(pdht.TunerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A skewed stream: key k observed 200/k times, plus a long tail.
	for k := uint64(1); k <= 40; k++ {
		for i := uint64(0); i < 200/k; i++ {
			tn.Observe(k)
		}
	}
	d, err := tn.Retune(pdht.TunerInputs{
		Members: 50, Observers: 50, Capacity: 64, Repl: 5,
		Env: 1.0 / 14, WindowRounds: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.KeyTtl < 1 || d.Alpha <= 0 || d.DistinctKeys < 30 {
		t.Fatalf("implausible decision %+v", d)
	}
	if ttl, ok := tn.KeyTtl(); !ok || ttl != d.KeyTtl {
		t.Fatalf("KeyTtl() = (%d,%v) after a successful retune", ttl, ok)
	}
}

func TestPublicAdaptiveSimulation(t *testing.T) {
	cfg := pdht.DefaultSimConfig()
	cfg.Strategy = pdht.StrategyPartialAdaptive
	cfg.Peers = 300
	cfg.Keys = 600
	cfg.Repl = 6
	cfg.Rounds = 80
	cfg.WarmupRounds = 20
	cfg.TunePeriod = 25
	res, err := pdht.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 || res.Answered == 0 {
		t.Fatalf("adaptive simulation answered %d/%d queries", res.Answered, res.Queries)
	}
	if res.Tuner.Retunes == 0 {
		t.Fatal("adaptive simulation never retuned")
	}
}
