module pdht

go 1.24
