// Package pdht is a query-adaptive partial distributed hash table, a
// reproduction of Klemm, Datta and Aberer: "A Query-Adaptive Partial
// Distributed Hash Table for Peer-to-Peer Systems" (EDBT 2004).
//
// A classical DHT indexes every key in the network whether anyone queries
// it or not, and pays routing-table maintenance for all of it; an
// unstructured network indexes nothing and pays a broadcast for every
// query. The paper's observation is that under realistic churn a key is
// only worth indexing if it is queried often enough to amortize its share
// of the maintenance cost, and its contribution is twofold:
//
//   - an analytical cost model that computes the indexing threshold fMin,
//     the worthwhile index size, and the total message cost of the
//     index-everything / broadcast-everything / partial strategies
//     (the Model* functions and Sweep below);
//
//   - a decentralized selection algorithm that realizes partial indexing
//     with no global knowledge: query the index first, broadcast on a
//     miss, insert the result with an expiration time keyTtl that is
//     refreshed by queries, so unqueried keys silently fall out
//     (StrategyPartialTTL in the simulator; internal/core implements it
//     against pluggable DHT backends).
//
// The package exposes four layers:
//
//   - The live system: Open builds an embeddable handle on a real cluster
//     — a full member node, or with WithClientOnly a lightweight
//     non-serving client — with a context-first, typed-error API and
//     batched operations (QueryMany/PublishMany: one OpBatch round trip
//     per destination peer). Package pdht/client is the full surface;
//     Open and the With* options re-export it here.
//
//   - The analytical model: DefaultScenario, Solve, SolveTTL, Sweep,
//     TTLSensitivity reproduce every figure of the paper's evaluation.
//
//   - The simulator: Simulate runs a message-level simulation of a full
//     peer-to-peer system (unstructured overlay with flooding and random
//     walks, trie or ring DHT, replica gossip, churn) under any of the
//     four strategies and reports measured message rates, hit rates and
//     index sizes next to the model's predictions.
//
//   - Metadata utilities: NewsQuery and QueryKey map the paper's
//     element=value metadata predicates to index keys.
//
// Beyond the reproduction, internal/node, internal/gossip, internal/replica
// and internal/transport serve the selection algorithm as a live system —
// peers exchanging Query/Insert/Refresh/Broadcast/Gossip RPCs over TCP,
// every index entry replicated at an r-member replica set (writes fan out,
// reads fail over from the primary through the keyspace-ranked backups
// before any broadcast, hits read-repair the holes churn punches), with
// SWIM-style membership detecting crashes, evicting dead peers and
// re-replicating moved index keys to the set's new members with their
// remaining TTLs — and cmd/pdht-node is the deployable; see its -demo mode
// for the whole story on a 3-node loopback cluster. internal/adapt closes the title's
// loop at runtime: each peer sketches its own query stream in O(1) per
// query and bounded memory, refits the model periodically, retunes keyTtl,
// and gates the indexing of keys whose measured rate falls below fMin
// (node.Config.Adaptive, the CLI's -adaptive, and StrategyPartialAdaptive
// in the simulator).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package pdht

import (
	"context"
	"time"

	"pdht/client"
	"pdht/internal/adapt"
	"pdht/internal/churn"
	"pdht/internal/metadata"
	"pdht/internal/model"
	"pdht/internal/sim"
	"pdht/internal/workload"
	"pdht/internal/zipf"
)

// ---- the live system: the embeddable client API ----

// Client is one live handle on the partial DHT — a full member node or a
// lightweight non-serving cluster client, built by Open. See package
// pdht/client for the full surface (QueryMany, PublishMany, ParseAndQuery,
// Report, …).
type Client = client.Client

// ClientResult is one resolved query of the live API.
type ClientResult = client.Result

// ClientKV is one key→value pair of a batched publish.
type ClientKV = client.KV

// ClientOption configures Open.
type ClientOption = client.Option

// QueryTrace is one finished query's per-leg causality record (index
// probes, broadcast, insert gate, refreshes, read repairs, stale-view
// re-syncs), delivered to WithTraceHook hooks and kept by the slow-query
// log; TraceLeg is one step of it.
type QueryTrace = client.QueryTrace
type TraceLeg = client.TraceLeg

// FleetReport is the cluster-wide aggregation of every member's metrics
// registry — per-peer rows, pooled latency quantiles, the measured cluster
// msgs/query next to the cost model's prediction — built by
// Client.ClusterReport; FleetPeer is one member's row of it.
type FleetReport = client.FleetReport
type FleetPeer = client.FleetPeer

// TopKResult is one resolved distributed top-k query (Client.QueryTopK):
// the k best documents cluster-wide under the threshold-algorithm round
// protocol, plus its cost accounting — rounds, wire legs, peers
// probed/skipped/failed, and whether the threshold bound terminated the
// query before every peer was drained. TopKEntry is one scored document.
type TopKResult = client.TopKResult
type TopKEntry = client.TopKEntry

// The typed failures of the live request path — errors.Is-able, shared
// with package pdht/client.
var (
	ErrClosed    = client.ErrClosed
	ErrNoMembers = client.ErrNoMembers
	ErrStaleView = client.ErrStaleView
	ErrTimeout   = client.ErrTimeout
	ErrBadQuery  = client.ErrBadQuery
)

// Open builds a live handle on the partial DHT: by default a full member
// node over TCP (serving the Query/Insert/Refresh/Broadcast/Gossip RPCs
// and holding its share of the index), with WithClientOnly a non-serving
// client that speaks the wire protocol to an existing cluster. Every
// request on the handle is context-first and batched access is one wire
// round trip per destination peer.
//
//	member, err := pdht.Open(ctx, pdht.WithListen("127.0.0.1:7070"))
//	cl, err := pdht.Open(ctx, pdht.WithClientOnly(), pdht.WithSeeds("127.0.0.1:7070"))
//	results, err := cl.QueryMany(ctx, keys)
func Open(ctx context.Context, opts ...ClientOption) (*Client, error) {
	return client.Open(ctx, opts...)
}

// The functional options of Open, re-exported from pdht/client.
func WithTCP() ClientOption                          { return client.WithTCP() }
func WithListen(addr string) ClientOption            { return client.WithListen(addr) }
func WithSeeds(seeds ...string) ClientOption         { return client.WithSeeds(seeds...) }
func WithClientOnly() ClientOption                   { return client.WithClientOnly() }
func WithBackend(name string) ClientOption           { return client.WithBackend(name) }
func WithReplication(repl int) ClientOption          { return client.WithReplication(repl) }
func WithKeyTtl(rounds int) ClientOption             { return client.WithKeyTtl(rounds) }
func WithCapacity(entries int) ClientOption          { return client.WithCapacity(entries) }
func WithRoundDuration(d time.Duration) ClientOption { return client.WithRoundDuration(d) }
func WithCallTimeout(d time.Duration) ClientOption   { return client.WithCallTimeout(d) }
func WithGossipInterval(d time.Duration) ClientOption {
	return client.WithGossipInterval(d)
}
func WithMaintainEnv(p float64) ClientOption { return client.WithMaintainEnv(p) }
func WithAdaptive(retuneInterval time.Duration) ClientOption {
	return client.WithAdaptive(retuneInterval)
}
func WithTraceHook(hook func(QueryTrace)) ClientOption { return client.WithTraceHook(hook) }
func WithTraceSampling(rate float64) ClientOption      { return client.WithTraceSampling(rate) }
func WithSlowQueryLog(threshold time.Duration, capacity int) ClientOption {
	return client.WithSlowQueryLog(threshold, capacity)
}
func WithDataDir(dir string) ClientOption  { return client.WithDataDir(dir) }
func WithStore(s ClientStore) ClientOption { return client.WithStore(s) }

// ClientStore is the persistence plane a durable member node journals
// through (see WithDataDir for the bundled file-backed implementation).
type ClientStore = client.Store

// Scenario holds the parameters of the analytical model, one field per
// symbol of the paper's Table 1.
type Scenario = model.Params

// DefaultScenario returns the paper's evaluation scenario (Table 1):
// 20,000 peers, 40,000 metadata keys, replication 50, Zipf α = 1.2,
// env = 1/14, dup = dup2 = 1.8.
func DefaultScenario() Scenario { return model.DefaultScenario() }

// FrequencyGrid returns the eight query frequencies on the x-axis of the
// paper's Figures 1–4 (one query per peer every 30 … 7200 seconds).
func FrequencyGrid() []float64 { return model.FrequencyGrid() }

// FormatFrequency renders a query frequency the way the paper labels its
// axes ("1/30", "1/7200").
func FormatFrequency(f float64) string { return model.FormatFrequency(f) }

// Solution is the resolved ideal-partial-indexing model: the indexing
// threshold FMin (eq. 2), the number of keys worth indexing MaxRank, the
// index hit probability PIndxd (eq. 5) and all cost components.
type Solution = model.Solution

// Solve resolves the model at the given scenario (Sections 2–3 of the
// paper; see model.Solve for the fixed-point discussion).
func Solve(s Scenario) (Solution, error) { return model.Solve(s, nil) }

// TTLSolution is the resolved selection-algorithm model: expected index
// size (eq. 15), hit probability (eq. 14) and total cost (eq. 17) at a
// given keyTtl.
type TTLSolution = model.TTLSolution

// SolveTTL evaluates the selection-algorithm model with an explicit keyTtl
// (in rounds; one round is one second).
func SolveTTL(s Scenario, keyTtl float64) (TTLSolution, error) {
	return model.SolveTTL(s, nil, keyTtl)
}

// SolveTTLAuto solves the ideal model, derives the paper's keyTtl = 1/fMin,
// and evaluates the selection algorithm with it.
func SolveTTLAuto(s Scenario) (Solution, TTLSolution, error) {
	return model.SolveTTLAuto(s, nil)
}

// IndexAllCost is eq. 11: total msg/s when every key is indexed.
func IndexAllCost(s Scenario) float64 { return model.IndexAllCost(s) }

// NoIndexCost is eq. 12: total msg/s when every query is broadcast.
func NoIndexCost(s Scenario) float64 { return model.NoIndexCost(s) }

// PartialCost is eq. 13: total msg/s of ideal partial indexing, evaluated
// on a solved model.
func PartialCost(sol Solution) float64 { return model.PartialCost(sol) }

// Savings returns 1 − cost/baseline, the y-axis of Figures 2 and 4.
func Savings(cost, baseline float64) float64 { return model.Savings(cost, baseline) }

// SweepPoint is one x-axis position of Figures 1–4.
type SweepPoint = model.SweepPoint

// Sweep evaluates the model across query frequencies (nil means the
// paper's grid), producing the series of Figures 1–4.
func Sweep(s Scenario, freqs []float64) ([]SweepPoint, error) {
	return model.Sweep(s, freqs)
}

// TTLSensitivityPoint is one row of the §5.1.1 keyTtl sensitivity analysis.
type TTLSensitivityPoint = model.TTLSensitivityPoint

// TTLSensitivity evaluates the selection algorithm with mis-estimated
// keyTtl values (errors are relative, e.g. ±0.5 for the paper's ±50%).
func TTLSensitivity(s Scenario, freqs, errors []float64) ([]TTLSensitivityPoint, error) {
	return model.TTLSensitivity(s, freqs, errors)
}

// IdealKeyTtl returns the paper's expiration-time choice 1/fMin.
func IdealKeyTtl(sol Solution) float64 { return model.IdealKeyTtl(sol) }

// Strategy selects how simulated queries are answered.
type Strategy = sim.Strategy

// The four strategies of the paper's evaluation, plus the adaptive variant:
// the selection algorithm with the live control plane (internal/adapt)
// driving keyTtl and the fMin insert gate from online frequency sketches.
const (
	StrategyNoIndex         = sim.StrategyNoIndex
	StrategyIndexAll        = sim.StrategyIndexAll
	StrategyPartialIdeal    = sim.StrategyPartialIdeal
	StrategyPartialTTL      = sim.StrategyPartialTTL
	StrategyPartialAdaptive = sim.StrategyPartialAdaptive
)

// Backend selects the DHT implementation under the index.
type Backend = sim.Backend

// The three structured-overlay backends; the selection algorithm is
// indifferent to the choice (the paper's DHT-genericity claim).
const (
	BackendTrie     = sim.BackendTrie
	BackendRing     = sim.BackendRing
	BackendKademlia = sim.BackendKademlia
)

// SimConfig describes one message-level simulation run.
type SimConfig = sim.Config

// SimResult is the measured outcome of one run, with the analytical
// prediction alongside.
type SimResult = sim.Result

// TracePoint is one time-series sample of a traced simulation.
type TracePoint = sim.TracePoint

// DefaultSimConfig returns a laptop-scale version of the paper's scenario
// (Table 1 proportions at one-tenth population).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate runs one message-level simulation.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// KeySource selects the simulated key universe.
type KeySource = sim.KeySource

// The two key universes: hashed synthetic identifiers, or metadata
// predicates of a generated news corpus.
const (
	KeysSynthetic = sim.KeysSynthetic
	KeysCorpus    = sim.KeysCorpus
)

// ChurnModel is the exponential on/off session model peers follow.
type ChurnModel = churn.Model

// ShiftEvent schedules a change of the query distribution mid-run.
type ShiftEvent = workload.ShiftEvent

// ShiftSchedule is a round-ordered list of shift events.
type ShiftSchedule = workload.Schedule

// The two kinds of popularity shift.
const (
	// ShiftShuffle gives every key a brand-new random popularity rank.
	ShiftShuffle = workload.ShiftShuffle
	// ShiftRotateHead rotates the hottest HeadSize ranks by one.
	ShiftRotateHead = workload.ShiftRotateHead
)

// Predicate is a single element = value condition on article metadata.
type Predicate = metadata.Predicate

// NewsQuery is a conjunction of metadata predicates, as in the paper's
// news-system example (title = "Weather Iráklion" AND date = "2004/03/14").
type NewsQuery = metadata.Query

// Article is one news item with its metadata file.
type Article = metadata.Article

// QueryKey returns the 64-bit index key for a conjunction of metadata
// predicates: the hash of its canonical form. Predicate order does not
// matter.
func QueryKey(preds ...Predicate) uint64 {
	return uint64(metadata.Query{Predicates: preds}.Key())
}

// ParseQuery parses the paper's query syntax, a conjunction of
// element=value predicates joined by AND:
//
//	q, err := pdht.ParseQuery("title=Weather Iráklion AND date=2004/03/14")
//	key := uint64(q.Key())
func ParseQuery(s string) (NewsQuery, error) {
	return metadata.ParseQuery(s)
}

// GenerateArticles returns a deterministic synthetic news corpus, the
// stand-in for the paper's 2,000 articles.
func GenerateArticles(n int, seed uint64) []Article {
	return metadata.GenerateArticles(n, seed)
}

// EstimateAlpha fits a Zipf exponent to observed per-key query counts by
// maximum likelihood — the calibration loop that lets a deployment feed
// Solve with its measured workload skew instead of a literature constant.
// counts holds how often each key was queried; keys is the size of the key
// universe (≥ len(counts)).
func EstimateAlpha(counts []int, keys int) (float64, error) {
	return zipf.EstimateAlpha(counts, keys)
}

// Tuner is the query-adaptive control plane of internal/adapt: count-min and
// heavy-hitter sketches over the query stream (O(1) per query, bounded
// memory), a periodic refit of the paper's model to what they saw, and the
// two actuated knobs — keyTtl = 1/fMin for future inserts, and the per-key
// fMin gate deciding whether a broadcast-resolved key is indexed at all.
// internal/node runs one per peer under node.Config.Adaptive; the simulator
// A/Bs it as StrategyPartialAdaptive.
type Tuner = adapt.Tuner

// TunerConfig parameterizes a Tuner; zero fields take documented defaults.
type TunerConfig = adapt.Config

// TunerInputs carries the cluster facts a retune fits against.
type TunerInputs = adapt.Inputs

// TunerDecision is one retune outcome: the fitted scenario (α, fQry,
// distinct keys), fMin, and the recommended keyTtl and gate threshold.
type TunerDecision = adapt.Decision

// NewTuner returns a standalone control plane, for embedding the
// measure→model→actuate loop outside the bundled node subsystem:
//
//	t, _ := pdht.NewTuner(pdht.TunerConfig{})
//	t.Observe(key)                      // on every query
//	d, _ := t.Retune(pdht.TunerInputs{  // periodically
//	    Members: 50, Observers: 1, Capacity: 1024, Repl: 3,
//	    Env: 1.0 / 14, WindowRounds: 60,
//	})
//	_ = d.KeyTtl                        // attach to inserts
//	_ = t.ShouldIndex(key)              // gate below-fMin inserts
func NewTuner(cfg TunerConfig) (*Tuner, error) { return adapt.NewTuner(cfg) }
