// Command pdht-top is the live fleet inspector of the partial DHT: it
// bootstraps a membership view from any cluster member, polls every peer's
// metrics registry over the OpStats RPC, and renders one row per live peer
// — query rate, hit rate, latency tail, the adaptive tuner's keyTtl, WAL
// size and each peer's own view of the fleet — under a summary line with
// the cluster-wide aggregates the paper's cost model predicts
// (msgs/query, pooled latency quantiles, tuner spread).
//
// Watch a running cluster:
//
//	pdht-top -seed 127.0.0.1:7070
//
// One machine-readable sample (for scripts and CI):
//
//	pdht-top -seed 127.0.0.1:7070 -once -json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdht/internal/node"
	"pdht/internal/obs"
	"pdht/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdht-top:", err)
		os.Exit(1)
	}
}

// run is main with its environment abstracted, so the integration test can
// drive the binary's real code path.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pdht-top", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		seed     = fs.String("seed", "", "comma-separated cluster members to bootstrap the membership view from (required)")
		interval = fs.Duration("interval", 2*time.Second, "poll and redraw period")
		once     = fs.Bool("once", false, "sample the fleet once, print, exit")
		jsonOut  = fs.Bool("json", false, "machine-readable output: the fleet aggregates plus one JSON object per peer row")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *seed == "" {
		return fmt.Errorf("-seed is required (any live cluster member)")
	}
	if *interval <= 0 {
		return fmt.Errorf("-interval %v must be positive", *interval)
	}
	seeds := strings.Split(*seed, ",")
	for i := range seeds {
		seeds[i] = strings.TrimSpace(seeds[i])
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rc, err := node.DialRemote(ctx, transport.NewTCP(), node.RemoteConfig{Seeds: seeds})
	if err != nil {
		return err
	}
	defer rc.Close()

	sample := func() (obs.FleetReport, error) {
		// Re-bootstrap the view each tick so peers that joined or died
		// since the last sample appear/disappear from the table. A failed
		// resync keeps the previous view; ClusterReport then covers
		// whoever still answers.
		_ = rc.Resync(ctx)
		return rc.ClusterReport(ctx)
	}

	if *once {
		fr, err := sample()
		if err != nil {
			return err
		}
		if *jsonOut {
			return writeJSON(out, fr)
		}
		writeTable(out, fr, time.Now())
		return nil
	}

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		fr, err := sample()
		if err != nil {
			fmt.Fprintf(out, "pdht-top: %v (retrying in %v)\n", err, *interval)
		} else if *jsonOut {
			if err := writeJSON(out, fr); err != nil {
				return err
			}
		} else {
			fmt.Fprint(out, "\x1b[2J\x1b[H") // clear, home
			writeTable(out, fr, time.Now())
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// writeJSON emits one fleet sample as a single JSON document: the
// aggregates under "fleet", then the peer rows one compact object per line
// — greppable row-by-row, parseable as a whole.
func writeJSON(out io.Writer, fr obs.FleetReport) error {
	sum := fr
	sum.Peers = nil
	sb, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(out, "{\"fleet\":%s,\n\"peers\":[\n", sb); err != nil {
		return err
	}
	for i, p := range fr.Peers {
		pb, err := json.Marshal(p)
		if err != nil {
			return err
		}
		comma := ","
		if i == len(fr.Peers)-1 {
			comma = ""
		}
		if _, err := fmt.Fprintf(out, "%s%s\n", pb, comma); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintln(out, "]}")
	return err
}

// writeTable renders the human view: a cluster summary line, the model
// comparison when a fit is available, and one aligned row per peer.
func writeTable(out io.Writer, fr obs.FleetReport, now time.Time) {
	fmt.Fprintf(out, "pdht-top  %s  —  %d peers  %d queries  hit %.1f%%  %.2f msgs/query",
		now.Format("15:04:05"), len(fr.Peers), fr.Queries, 100*fr.HitRate, fr.MsgsPerQuery)
	if fr.PredictedMsgsPerQuery > 0 {
		fmt.Fprintf(out, " (model %.2f)", fr.PredictedMsgsPerQuery)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "latency p50 %s  p90 %s  p99 %s   keyTtl %s",
		fmtDur(fr.P50), fmtDur(fr.P90), fmtDur(fr.P99), fmtRange(fr.KeyTtlMin, fr.KeyTtlMax))
	if fr.FMinMax > 0 {
		fmt.Fprintf(out, "   fMin %.3g–%.3g", fr.FMinMin, fr.FMinMax)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-24s %8s %6s %9s %7s %9s %6s %7s %7s\n",
		"PEER", "QPS", "HIT%", "P99", "KEYTTL", "WAL", "ALIVE", "MSG/Q", "TOPK/Q")
	for _, p := range fr.Peers {
		fmt.Fprintf(out, "%-24s %8.1f %6.1f %9s %7.0f %9s %6d %7.2f %7s\n",
			p.Addr, p.QPS, 100*p.HitRate, fmtDur(p.P99), p.KeyTtl,
			fmtBytes(p.WALBytes), p.MembersAlive, p.MsgsPerQuery, fmtTopK(p.TopKLegsPerQuery))
	}
}

// fmtDur renders a latency with the precision its magnitude deserves.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// fmtRange renders the min–max spread of a per-peer knob, collapsing an
// agreed-upon value to one number.
func fmtRange(lo, hi float64) string {
	if lo == hi {
		return fmt.Sprintf("%.0f", lo)
	}
	return fmt.Sprintf("%.0f–%.0f", lo, hi)
}

// fmtTopK renders a peer's top-k legs/query; peers that coordinated none
// render as "-".
func fmtTopK(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// fmtBytes humanizes a byte count; zero (memory-only peers) renders as "-".
func fmtBytes(n int64) string {
	switch {
	case n == 0:
		return "-"
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	}
}
