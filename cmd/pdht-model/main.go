// pdht-model evaluates the paper's analytical cost model (Sections 2–5)
// and prints the series behind Table 1 and Figures 1–4, plus the keyTtl
// sensitivity analysis, for any scenario.
//
// Usage:
//
//	pdht-model [flags]
//
// With no flags it reproduces the paper's sample scenario exactly.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdht/internal/experiments"
	"pdht/internal/model"
)

func main() {
	base := model.DefaultScenario()
	peers := flag.Int("peers", base.NumPeers, "total number of peers (numPeers)")
	keys := flag.Int("keys", base.Keys, "number of unique keys")
	stor := flag.Int("stor", base.Stor, "index storage capacity per peer")
	repl := flag.Int("repl", base.Repl, "replication factor")
	alpha := flag.Float64("alpha", base.Alpha, "Zipf exponent of the query distribution")
	fQry := flag.Float64("fqry", base.FQry, "queries per peer per second")
	fUpd := flag.Float64("fupd", base.FUpd, "updates per key per second")
	env := flag.Float64("env", base.Env, "route maintenance constant")
	dup := flag.Float64("dup", base.Dup, "duplication factor of unstructured search")
	dup2 := flag.Float64("dup2", base.Dup2, "duplication factor of replica-subnet floods")
	flag.Parse()

	p := model.Params{
		NumPeers: *peers, Keys: *keys, Stor: *stor, Repl: *repl,
		Alpha: *alpha, FQry: *fQry, FUpd: *fUpd, Env: *env,
		Dup: *dup, Dup2: *dup2,
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	experiments.Table1(p).Render(os.Stdout)
	fmt.Println()

	sol, err := model.Solve(p, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("At fQry = %s: cSUnstr = %.1f msg, cSIndx = %.2f msg, cIndKey = %.4f msg/s\n",
		model.FormatFrequency(p.FQry), sol.CSUnstr, sol.CSIndx, sol.CIndKey)
	fmt.Printf("fMin = %.3g queries/round → %d of %d keys worth indexing (pIndxd = %.3f)\n\n",
		sol.FMin, sol.MaxRank, p.Keys, sol.PIndxd)

	if t, _, err := experiments.Fig1(p); err == nil {
		t.Render(os.Stdout)
		fmt.Println()
	} else {
		fail(err)
	}
	if t, _, err := experiments.Fig2(p); err == nil {
		t.Render(os.Stdout)
		fmt.Println()
	} else {
		fail(err)
	}
	if t, _, err := experiments.Fig3(p); err == nil {
		t.Render(os.Stdout)
		fmt.Println()
	} else {
		fail(err)
	}
	if t, _, err := experiments.Fig4(p); err == nil {
		t.Render(os.Stdout)
		fmt.Println()
	} else {
		fail(err)
	}
	if t, _, err := experiments.TTLSens(p); err == nil {
		t.Render(os.Stdout)
	} else {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
