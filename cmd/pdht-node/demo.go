package main

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"time"

	"pdht/internal/metadata"
	"pdht/internal/node"
	"pdht/internal/transport"
	"pdht/internal/zipf"
)

// runDemo tells the paper's story over real sockets: a 3-node cluster on
// TCP loopback, a metadata query that misses the index, is answered by
// broadcast and inserted with keyTtl, a repeat that hits the index, a
// short Zipf workload, and the closing report with the measured hit rate
// next to the SolveTTL prediction.
func runDemo(out io.Writer) error {
	cfg := node.DefaultConfig()
	cfg.RoundDuration = 100 * time.Millisecond
	cfg.KeyTtl = 50 // 5s of lifetime: nothing expires mid-demo
	cfg.Repl = 2

	tr := transport.NewTCP()
	seedNode, err := node.New(tr, cfg)
	if err != nil {
		return err
	}
	defer seedNode.Close()
	cfg.Seed = seedNode.Addr()
	n2, err := node.New(tr, cfg)
	if err != nil {
		return err
	}
	defer n2.Close()
	n3, err := node.New(tr, cfg)
	if err != nil {
		return err
	}
	defer n3.Close()
	nodes := []*node.Node{seedNode, n2, n3}
	fmt.Fprintf(out, "3-node cluster on TCP loopback: %s, %s, %s\n",
		seedNode.Addr(), n2.Addr(), n3.Addr())

	// Wait for the join forwarding to give every node the full view.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(seedNode.Members()) == 3 && len(n2.Members()) == 3 && len(n3.Members()) == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A synthetic news corpus, each article's metadata keys published at
	// two nodes (content replication).
	ctx := context.Background()
	arts := metadata.GenerateArticles(30, 1)
	var allKeys []uint64
	for i := range arts {
		for _, ik := range arts[i].Keys(0) {
			if err := nodes[i%3].Publish(ctx, uint64(ik.Key), uint64(arts[i].ID)); err != nil {
				return err
			}
			if err := nodes[(i+1)%3].Publish(ctx, uint64(ik.Key), uint64(arts[i].ID)); err != nil {
				return err
			}
			allKeys = append(allKeys, uint64(ik.Key))
		}
	}
	fmt.Fprintf(out, "published %d index keys from %d articles\n\n", len(allKeys), len(arts))

	// The paper's example flow, in its query syntax: first query misses
	// and is answered by broadcast + inserted; the repeat — from a
	// different node — hits the index.
	text := fmt.Sprintf("title=%s AND date=%s", arts[0].Title, arts[0].Date)
	if err := answer(n2, text, out); err != nil {
		return err
	}
	if err := answer(n3, text, out); err != nil {
		return err
	}

	// A short Zipf workload so the closing report has an operating point
	// worth comparing against the model.
	dist, err := zipf.New(1.2, len(allKeys))
	if err != nil {
		return err
	}
	sampler := zipf.NewSampler(dist, rand.New(rand.NewPCG(3, 5)))
	rng := rand.New(rand.NewPCG(8, 13))
	for q := 0; q < 300; q++ {
		if _, err := nodes[rng.IntN(3)].Query(ctx, allKeys[sampler.Sample()]); err != nil {
			return err
		}
	}
	// Let at least one full round elapse so per-round rates are defined.
	time.Sleep(2 * cfg.RoundDuration)

	fmt.Fprintf(out, "\n")
	fmt.Fprint(out, nodes[0].Report())
	return nil
}
