package main

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"pdht/internal/metadata"
	"pdht/internal/node"
	"pdht/internal/transport"
)

// mustPublish installs key→value in n's content store, failing the test on
// a typed error.
func mustPublish(t *testing.T, n *node.Node, key, value uint64) {
	t.Helper()
	if err := n.Publish(context.Background(), key, value); err != nil {
		t.Fatalf("Publish(%d): %v", key, err)
	}
}

// TestDemoTellsTheWholeStory is the acceptance test of the live subsystem:
// a 3-node cluster on TCP loopback where a ParseQuery-syntax query misses
// the index, is answered by broadcast, is inserted with keyTtl, and a
// repeated query hits the index — with the closing report putting the
// measured hit rate next to the SolveTTL prediction.
func TestDemoTellsTheWholeStory(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo"}, &buf); err != nil {
		t.Fatalf("demo failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()

	miss := strings.Index(out, "index miss, answered by broadcast")
	hit := strings.Index(out, "answered from the index")
	if miss < 0 {
		t.Fatalf("demo never showed the miss→broadcast→insert leg:\n%s", out)
	}
	if hit < 0 {
		t.Fatalf("demo never showed the repeat query hitting the index:\n%s", out)
	}
	if hit < miss {
		t.Fatalf("index hit reported before the initial miss:\n%s", out)
	}
	for _, want := range []string{
		"3-node cluster on TCP loopback",
		"hit rate: measured",
		"vs predicted",
		"index size: measured",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo output lacks %q:\n%s", want, out)
		}
	}
}

// TestDemoTopKTellsTheStory is the acceptance test of the -demo-topk
// surface: the cold coordinated query ranks the full-match article first,
// and the warm repeat terminates the threshold protocol early.
func TestDemoTopKTellsTheStory(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo-topk"}, &buf); err != nil {
		t.Fatalf("demo-topk failed: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"3-node cluster on TCP loopback",
		"#1 article 301 (score 3.0)",
		"#2 article 302 (score 2.0)",
		"warm repeat",
		"threshold met after",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("demo-topk output lacks %q:\n%s", want, out)
		}
	}
}

// TestQueryFlagAgainstRunningSeed exercises the single-shot CLI path: a
// seed node with published content is already up; `pdht-node -seed …
// -query …` joins over TCP, resolves the query by broadcast, and prints
// its report.
func TestQueryFlagAgainstRunningSeed(t *testing.T) {
	cfg := node.DefaultConfig()
	cfg.RoundDuration = 100 * time.Millisecond
	seed, err := node.New(transport.NewTCP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	arts := metadata.GenerateArticles(5, 1)
	for i := range arts {
		for _, ik := range arts[i].Keys(0) {
			mustPublish(t, seed, uint64(ik.Key), uint64(arts[i].ID))
		}
	}

	text := fmt.Sprintf("title=%s", arts[2].Title)
	var buf bytes.Buffer
	err = run([]string{
		"-seed", seed.Addr(),
		"-round", "100ms",
		"-gossip-interval", "20ms",
		"-suspicion", "100ms",
		"-query", text,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, fmt.Sprintf("article %d", arts[2].ID)) {
		t.Fatalf("query did not resolve to article %d:\n%s", arts[2].ID, out)
	}
	if !strings.Contains(out, "answered by broadcast") {
		t.Fatalf("cold query should have been answered by broadcast:\n%s", out)
	}
	if !strings.Contains(out, "queries 1") {
		t.Fatalf("report not printed:\n%s", out)
	}
	// The report's membership line is the status view: both peers of the
	// 2-node cluster must appear alive.
	if !strings.Contains(out, "membership:") || !strings.Contains(out, seed.Addr()+"=alive") {
		t.Fatalf("report lacks the membership status view:\n%s", out)
	}
}

func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-backend", "osmosis", "-query", "a=b"}, &buf); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := run([]string{"-not-a-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestBadQuerySyntax(t *testing.T) {
	cfg := node.DefaultConfig()
	seed, err := node.New(transport.NewTCP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	var buf bytes.Buffer
	if err := run([]string{"-seed", seed.Addr(), "-query", "no predicate here"}, &buf); err == nil {
		t.Fatal("malformed query accepted")
	}
}

// TestAdaptiveFlagReportsControlPlane boots an adaptive node against a
// running seed and checks that the report carries the control-plane block —
// the CLI surface of internal/adapt.
func TestAdaptiveFlagReportsControlPlane(t *testing.T) {
	cfg := node.DefaultConfig()
	cfg.RoundDuration = 100 * time.Millisecond
	seed, err := node.New(transport.NewTCP(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Close()
	arts := metadata.GenerateArticles(3, 1)
	for i := range arts {
		for _, ik := range arts[i].Keys(0) {
			mustPublish(t, seed, uint64(ik.Key), uint64(arts[i].ID))
		}
	}

	var buf bytes.Buffer
	err = run([]string{
		"-seed", seed.Addr(),
		"-round", "100ms",
		"-gossip-interval", "20ms",
		"-suspicion", "100ms",
		"-adaptive",
		"-retune-interval", "1h", // no retune fires during the test
		"-env", "0.1",
		"-query", fmt.Sprintf("title=%s", arts[1].Title),
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "adaptive: keyTtl 120") {
		t.Fatalf("report lacks the adaptive control-plane block:\n%s", out)
	}
	if err := run([]string{"-retune-interval", "-5s", "-adaptive", "-query", "a=b"}, &buf); err == nil {
		t.Fatal("negative retune interval accepted")
	}
}
