// Command pdht-node runs one live peer of the query-adaptive partial DHT:
// it serves the Query/Insert/Refresh/Broadcast/Gossip RPCs over TCP,
// bootstraps SWIM gossip membership through a seed peer (and from then on
// detects crashes, evicts dead peers and hands off moved index keys on its
// own), publishes synthetic news articles as local content, and answers
// metadata queries in the paper's element=value AND element=value syntax
// with the §5.1 selection algorithm (index search → broadcast on a miss →
// insert with keyTtl → refresh on a hit). With -adaptive the node also runs
// the query-adaptive control plane: it sketches its own query stream,
// refits the paper's model every -retune-interval, attaches the tuned
// keyTtl to inserts, and refuses to index keys whose measured rate falls
// below the fitted fMin (reported under "adaptive:" in the status block).
//
// Start a 3-node cluster on one machine:
//
//	pdht-node -listen 127.0.0.1:7070 -publish 50 &
//	pdht-node -listen 127.0.0.1:7071 -seed 127.0.0.1:7070 -publish 50 &
//	pdht-node -listen 127.0.0.1:7072 -seed 127.0.0.1:7070 \
//	    -query "title=Weather Iráklion AND date=2004/03/14"
//
// Or watch the whole story locally:
//
//	pdht-node -demo
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pdht/internal/chaos"
	"pdht/internal/metadata"
	"pdht/internal/node"
	"pdht/internal/store"
	"pdht/internal/transport"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pdht-node:", err)
		os.Exit(1)
	}
}

// run is main with its environment abstracted, so the integration test can
// drive the binary's real code path.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pdht-node", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		listen      = fs.String("listen", "127.0.0.1:0", "address to serve on")
		seed        = fs.String("seed", "", "existing cluster member to join")
		backend     = fs.String("backend", "ring", "structured overlay: ring, trie or kademlia")
		repl        = fs.Int("replicas", 3, "replica-set size: copies kept of every index entry (the paper's repl)")
		keyTtl      = fs.Int("ttl", 120, "expiration time attached to inserted keys, in rounds")
		capacity    = fs.Int("capacity", 1024, "index cache size (the paper's stor)")
		round       = fs.Duration("round", time.Second, "wall-time length of one round")
		publish     = fs.Int("publish", 0, "publish the metadata keys of N synthetic articles")
		publishSeed = fs.Uint64("publish-seed", 1, "corpus generator seed")
		query       = fs.String("query", "", "answer one ParseQuery-syntax query, print the report, exit")
		report      = fs.Duration("report", 30*time.Second, "status report interval while serving")
		gossipEvery = fs.Duration("gossip-interval", 0, "SWIM membership protocol period (0: one round)")
		suspicion   = fs.Duration("suspicion", 0, "how long an unresponsive peer stays suspect before eviction (0: 4× gossip interval)")
		syncEvery   = fs.Duration("sync-interval", 0, "anti-entropy full-state exchange period (0: 4× gossip interval)")
		members     = fs.Bool("members", false, "print the live membership table with each report")
		adaptive    = fs.Bool("adaptive", false, "run the query-adaptive control plane: sketch the query stream, retune keyTtl online, gate below-fMin inserts")
		retuneEvery = fs.Duration("retune-interval", 0, "adaptive refit period and observation window (0: 60 rounds)")
		env         = fs.Float64("env", 0, "per-routing-entry per-round probe probability (the paper's env; feeds the adaptive fMin)")
		httpAddr    = fs.String("http", "", "serve the debug HTTP plane on this address (/metrics, /report, /traces, /healthz, /debug/pprof); empty disables it")
		slowQuery   = fs.Duration("slow-query", 0, "retain traces of queries at or above this duration, served under /traces (0 disables the slow-query log)")
		dataDir     = fs.String("data-dir", "", "persist index and content mutations to a WAL+snapshot under this directory; a restart on the same directory rejoins warm at remaining TTL (empty: in-memory only)")
		fsyncMode   = fs.String("fsync", "interval", "WAL durability policy with -data-dir: always (fsync per append), interval (background flush), none (page cache only)")
		snapEvery   = fs.Duration("snapshot-interval", time.Minute, "WAL compaction period with -data-dir: how often outstanding records are absorbed into a snapshot")
		demo        = fs.Bool("demo", false, "run the 3-node TCP-loopback demonstration and exit")
		demoTopK    = fs.Bool("demo-topk", false, "run the 3-node distributed top-k demonstration and exit")
		chaosSeed   = fs.Uint64("chaos-seed", 1, "seed of the fault-injection random streams (shared across the cluster so partitions line up)")
		chaosDrop   = fs.Float64("chaos-drop", 0, "fault injection: per-message per-direction drop probability on every outbound link")
		chaosLat    = fs.Duration("chaos-latency", 0, "fault injection: fixed one-way latency added to every outbound message")
		chaosJitter = fs.Duration("chaos-jitter", 0, "fault injection: uniform extra latency in [0, jitter) per outbound message")
		chaosSched  = fs.String("chaos-schedule", "", "fault schedule in the chaos mini-language (e.g. \"healthy=30s,drop20+split3=60s,heal=10m\"); splits assign groups by hashing advertised addresses, so identically-scheduled containers partition consistently with no coordination")
	)
	// -repl predates -replicas; both set the same knob.
	fs.IntVar(repl, "repl", *repl, "alias of -replicas")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *report <= 0 {
		return fmt.Errorf("-report interval %v must be positive", *report)
	}
	if *demo {
		return runDemo(out)
	}
	if *demoTopK {
		return runDemoTopK(out)
	}

	cfg := node.DefaultConfig()
	cfg.Addr = *listen
	cfg.Seed = *seed
	cfg.Backend = node.Backend(*backend)
	cfg.Repl = *repl
	cfg.KeyTtl = *keyTtl
	cfg.Capacity = *capacity
	cfg.RoundDuration = *round
	cfg.GossipInterval = *gossipEvery
	cfg.SuspicionTimeout = *suspicion
	cfg.SyncInterval = *syncEvery
	cfg.Adaptive = *adaptive
	cfg.RetuneInterval = *retuneEvery
	cfg.MaintainEnv = *env
	cfg.SlowQueryThreshold = *slowQuery

	if *dataDir != "" {
		policy, err := store.ParseSyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		st, err := store.OpenFile(store.FileOptions{Dir: *dataDir, Fsync: policy, SnapshotEvery: *snapEvery})
		if err != nil {
			return err
		}
		cfg.Store = st
		if rs := st.Stats(); rs.Recovered+rs.Content > 0 || rs.Expired > 0 || rs.DroppedRecords > 0 {
			fmt.Fprintf(out, "recovered %d index entries at remaining TTL and %d content entries from %s in %v (%d expired while down, %d records dropped)\n",
				rs.Recovered, rs.Content, *dataDir, rs.Replay.Round(time.Millisecond), rs.Expired, rs.DroppedRecords)
		}
	}

	// Fault injection: with any -chaos-* knob set, the TCP transport is
	// wrapped in the same chaos layer the in-process fleet harness uses, so
	// a container cluster misbehaves exactly like the tested scenarios.
	var tr transport.Transport = transport.NewTCP()
	if *chaosDrop > 0 || *chaosLat > 0 || *chaosJitter > 0 || *chaosSched != "" {
		if _, port, err := net.SplitHostPort(*listen); err != nil || port == "" || port == "0" {
			return fmt.Errorf("-chaos-* needs an explicit -listen host:port (got %q): the advertised address is the node's chaos-group identity", *listen)
		}
		cnet := chaos.New(tr, chaos.Config{
			Seed:          *chaosSeed,
			Drop:          *chaosDrop,
			LatencyBase:   *chaosLat,
			LatencyJitter: *chaosJitter,
		})
		tr = cnet.Node(cfg.Addr)
		if *chaosSched != "" {
			scenario, err := chaos.ParseSchedule(*chaosSched)
			if err != nil {
				return err
			}
			go scenario.Run(cnet, nil, func(p chaos.Phase) {
				fmt.Fprintf(out, "chaos phase %s for %s\n", p.Name, p.Duration)
			})
		}
	}

	nd, err := node.New(tr, cfg)
	if err != nil {
		if cfg.Store != nil {
			cfg.Store.Close()
		}
		return err
	}
	defer nd.Close()
	fmt.Fprintf(out, "serving on %s (%d members known)\n", nd.Addr(), len(nd.Members()))

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("debug http: %w", err)
		}
		srv := &http.Server{Handler: nd.DebugHandler()}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "debug http on http://%s/ (metrics, report, traces, healthz, debug/pprof)\n", ln.Addr())
	}

	if *publish > 0 {
		n, err := publishArticles(nd, *publish, *publishSeed)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "published %d index keys from %d articles\n", n, *publish)
	}

	if *query != "" {
		if err := answer(nd, *query, out); err != nil {
			return err
		}
		fmt.Fprint(out, nd.Report())
		return nil
	}

	// Serve until interrupted, reporting periodically.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*report)
	defer tick.Stop()
	status := func() {
		fmt.Fprint(out, nd.Report())
		if *members {
			printMembers(out, nd)
		}
	}
	for {
		select {
		case <-sig:
			status()
			return nil
		case <-tick.C:
			status()
		}
	}
}

// printMembers renders the live membership/status table: every peer the
// gossip layer has ever heard of, its health, and the incarnation that
// orders conflicting claims about it.
func printMembers(out io.Writer, nd *node.Node) {
	fmt.Fprintf(out, "membership of %s (view v%d):\n", nd.Addr(), nd.ViewVersion())
	for _, m := range nd.Membership() {
		fmt.Fprintf(out, "  %-28s %-8s incarnation %d\n", m.Addr, m.Status, m.Incarnation)
	}
}

// publishArticles installs every index key of n generated articles in the
// node's content store (value = article ID) and returns the key count.
func publishArticles(nd *node.Node, n int, seed uint64) (int, error) {
	arts := metadata.GenerateArticles(n, seed)
	pairs := make([]node.KV, 0, n*20)
	for i := range arts {
		for _, ik := range arts[i].Keys(0) {
			pairs = append(pairs, node.KV{Key: uint64(ik.Key), Value: uint64(arts[i].ID)})
		}
	}
	return len(pairs), nd.PublishMany(context.Background(), pairs)
}

// answer resolves one ParseQuery-syntax query and prints the outcome.
func answer(nd *node.Node, text string, out io.Writer) error {
	q, err := metadata.ParseQuery(text)
	if err != nil {
		return err
	}
	res, err := nd.Query(context.Background(), uint64(q.Key()))
	if err != nil {
		return err
	}
	printResult(out, text, res)
	return nil
}

// printResult renders one query outcome the way the demo and the -query
// flag report it.
func printResult(out io.Writer, text string, res node.QueryResult) {
	switch {
	case res.FromIndex:
		fmt.Fprintf(out, "%q → article %d, answered from the index by %s (%d msgs)\n",
			text, res.Value, res.AnsweredBy, res.Total())
	case res.Answered:
		fmt.Fprintf(out, "%q → article %d, index miss, answered by broadcast from %s and inserted with keyTtl (%d msgs)\n",
			text, res.Value, res.AnsweredBy, res.Total())
	default:
		fmt.Fprintf(out, "%q → unanswered (%d msgs)\n", text, res.Total())
	}
}
