package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"pdht/internal/metadata"
	"pdht/internal/node"
	"pdht/internal/topk"
	"pdht/internal/transport"
)

// predTerm hashes one element=value predicate to its term key — the same
// mapping the client's "topk:<k> …" mini-language uses.
func predTerm(elem, val string) uint64 {
	return uint64(metadata.Query{Predicates: []metadata.Predicate{{Element: elem, Value: val}}}.Key())
}

// runDemoTopK tells the distributed top-k story over real sockets: a
// 3-node cluster on TCP loopback holding articles that match one, two or
// all three terms of a query, a cold coordinated query resolving the exact
// best-two, and a warm repeat where the planner's yield history terminates
// the threshold protocol early with fewer wire legs.
func runDemoTopK(out io.Writer) error {
	cfg := node.DefaultConfig()
	cfg.RoundDuration = 100 * time.Millisecond
	cfg.KeyTtl = 50
	cfg.Repl = 2

	tr := transport.NewTCP()
	seedNode, err := node.New(tr, cfg)
	if err != nil {
		return err
	}
	defer seedNode.Close()
	cfg.Seed = seedNode.Addr()
	n2, err := node.New(tr, cfg)
	if err != nil {
		return err
	}
	defer n2.Close()
	n3, err := node.New(tr, cfg)
	if err != nil {
		return err
	}
	defer n3.Close()
	fmt.Fprintf(out, "3-node cluster on TCP loopback: %s, %s, %s\n",
		seedNode.Addr(), n2.Addr(), n3.Addr())
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(seedNode.Members()) == 3 && len(n2.Members()) == 3 && len(n3.Members()) == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Three query terms; article 301 matches all of them (replicated at two
	// nodes), 302 matches two, 303 one — the ranking the query must find.
	terms := []uint64{
		predTerm("term", "weather"),
		predTerm("term", "crete"),
		predTerm("date", "2004/03/14"),
	}
	ctx := context.Background()
	publish := func(nd *node.Node, doc uint64, ts []uint64) error {
		for _, term := range ts {
			if err := nd.Publish(ctx, term, doc); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range []struct {
		nd    *node.Node
		doc   uint64
		terms []uint64
	}{
		{seedNode, 301, terms}, {n2, 301, terms},
		{n2, 302, terms[:2]}, {n3, 302, terms[:2]},
		{n3, 303, terms[:1]},
	} {
		if err := publish(p.nd, p.doc, p.terms); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "published articles 301 (3 terms, replicated), 302 (2 terms), 303 (1 term)\n\n")

	query := `topk:2 for "term=weather AND term=crete AND date=2004/03/14"`
	cold, err := seedNode.QueryTopK(ctx, terms, 2)
	if err != nil {
		return err
	}
	printTopK(out, "cold "+query, cold)

	warm, err := seedNode.QueryTopK(ctx, terms, 2)
	if err != nil {
		return err
	}
	printTopK(out, "warm repeat", warm)
	if warm.Early {
		fmt.Fprintf(out, "\nthe warm plan probed the proven holders first: threshold met after %d wire legs\n", warm.Legs)
	}
	return nil
}

// printTopK renders one coordinated top-k outcome.
func printTopK(out io.Writer, label string, res topk.Result) {
	fmt.Fprintf(out, "%s:\n", label)
	for i, e := range res.Entries {
		fmt.Fprintf(out, "  #%d article %d (score %.1f)\n", i+1, e.Doc, e.Score)
	}
	fmt.Fprintf(out, "  %d rounds, %d wire legs, %d peers probed, %d skipped, early=%v\n",
		res.Rounds, res.Legs, res.Probed, res.Skipped, res.Early)
}
