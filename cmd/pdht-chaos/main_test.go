package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestRunSmallFleet drives the real flag-to-JSON path on a small fleet and
// checks the report parses back with the acceptance shape intact.
func TestRunSmallFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet CLI test skipped in -short mode")
	}
	var out bytes.Buffer
	err := run([]string{
		"-n", "12", "-seed", "7", "-entries", "16", "-quiet",
		"-schedule", "healthy=300ms,drop20+split2=1s,heal=0s",
	}, &out, io.Discard)
	if err != nil {
		t.Fatalf("run: %v (output %s)", err, out.String())
	}
	var rep struct {
		N           int    `json:"n"`
		Schedule    string `json:"schedule"`
		Converged   bool   `json:"converged"`
		WithinBound bool   `json:"withinBound"`
		Accounting  struct {
			Lost        int `json:"lost"`
			Resurrected int `json:"resurrected"`
			Held        int `json:"held"`
		} `json:"accounting"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, out.String())
	}
	if rep.N != 12 || !rep.Converged || !rep.WithinBound {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Accounting.Lost != 0 || rep.Accounting.Resurrected != 0 || rep.Accounting.Held == 0 {
		t.Fatalf("accounting: %+v", rep.Accounting)
	}
	if !strings.Contains(rep.Schedule, "drop20+split2") {
		t.Fatalf("schedule not echoed: %q", rep.Schedule)
	}
}

// TestRunRejectsBadSchedule pins the parse error path.
func TestRunRejectsBadSchedule(t *testing.T) {
	err := run([]string{"-schedule", "nonsense=1s"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("bad schedule accepted")
	}
}
