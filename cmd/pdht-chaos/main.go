// Command pdht-chaos boots an in-process fleet of live pdht nodes over a
// fault-injecting transport, plays a scripted fault schedule against it,
// and prints the outcome — convergence times against the computed gossip
// bound, the entry-accounting verdict (lost / resurrected / held),
// placement agreement, handoff traffic and the adaptive tuner's deviation
// from the fitted model — as one JSON object on stdout.
//
// The schedule mini-language is shared with the container harness
// (deploy/chaos): comma-separated `phase=duration` tokens where phase is
// `healthy`, `heal`, `splitK`, `onewayK`, `dropPCT`, or combinations
// joined with `+`:
//
//	pdht-chaos -n 128 -schedule "healthy=2s,drop20+split3=10s,heal=30s"
//	pdht-chaos -n 1000 -drop 0.02 -latency 1ms -jitter 2ms -adaptive
//
// Exit status is 0 only if the fleet converged within the bound with zero
// entries lost or resurrected and no double-owned keys — the same
// acceptance the nightly chaos CI job enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pdht/internal/chaos"
	"pdht/internal/node"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pdht-chaos:", err)
		os.Exit(1)
	}
}

// run is main with its environment abstracted so tests can drive the real
// flag-to-report path.
func run(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("pdht-chaos", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		n        = fs.Int("n", 128, "fleet size: live nodes booted in this process")
		seed     = fs.Uint64("seed", 1, "chaos seed: all drop, jitter and reorder draws derive from it")
		schedule = fs.String("schedule", "healthy=1s,drop20+split3=5s,heal=0s", "fault schedule (phase=duration tokens; trailing benign phase bounds the heal wait, 0 = computed bound)")
		drop     = fs.Float64("drop", 0, "baseline per-leg drop probability applied in every phase")
		latency  = fs.Duration("latency", 0, "baseline one-way latency added to every delivery")
		jitter   = fs.Duration("jitter", 0, "uniform extra latency in [0, jitter) per delivery")
		entries  = fs.Int("entries", 64, "accounting ledger size (half long-lived for loss detection, half expiring for resurrection detection); 0 disables")
		workers  = fs.Int("workers", 0, "concurrent Zipf query workers driving live load through the scenario")
		keys     = fs.Int("keys", 512, "workload key population for -workers")
		adaptive = fs.Bool("adaptive", false, "run every node's query-adaptive control plane and report the tuner envelope")
		retune   = fs.Duration("retune-interval", 2*time.Second, "adaptive refit period with -adaptive")
		bootWait = fs.Duration("boot-timeout", 0, "initial convergence deadline (0: 60s + 50ms per node)")
		quiet    = fs.Bool("quiet", false, "suppress phase and convergence progress lines on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	scenario, err := chaos.ParseSchedule(*schedule)
	if err != nil {
		return err
	}

	cfg := chaos.RunConfig{
		N: *n,
		Chaos: chaos.Config{
			Seed:          *seed,
			Drop:          *drop,
			LatencyBase:   *latency,
			LatencyJitter: *jitter,
		},
		Scenario:     scenario,
		Entries:      *entries,
		Workload:     *workers,
		WorkloadKeys: *keys,
		BootTimeout:  *bootWait,
	}
	if *adaptive {
		cfg.Node = node.Config{Adaptive: true, RetuneInterval: *retune}
		// The per-node sketch footprint must stay small when hundreds of
		// tuners share one process.
		cfg.Node.Tuner.SketchWidth = 1 << 10
		cfg.Node.Tuner.TopK = 64
		cfg.Node.Tuner.DistinctBits = 1 << 12
	}
	if !*quiet {
		cfg.OnPhase = func(p chaos.Phase) {
			fmt.Fprintf(errw, "phase %s for %s\n", p.Name, p.Duration)
		}
		cfg.OnProgress = func(elapsed time.Duration, p chaos.ProgressSnapshot) {
			fmt.Fprintf(errw, "  t=%s members %d..%d, %d distinct views\n",
				elapsed.Round(time.Second), p.MinMembers, p.MaxMembers, p.DistinctViews)
		}
	}

	rep, err := chaos.Run(cfg)
	if rep != nil {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(rep); encErr != nil && err == nil {
			err = encErr
		}
	}
	if err != nil {
		return err
	}
	switch {
	case !rep.Converged:
		return fmt.Errorf("fleet did not re-converge after heal (waited %s)", rep.HealConverge.Round(time.Millisecond))
	case !rep.WithinBound:
		return fmt.Errorf("heal convergence %s exceeded the computed bound %s", rep.HealConverge.Round(time.Millisecond), rep.Bound.Round(time.Millisecond))
	case rep.Accounting.Lost > 0 || rep.Accounting.Resurrected > 0:
		return fmt.Errorf("entry accounting failed: %d lost, %d resurrected", rep.Accounting.Lost, rep.Accounting.Resurrected)
	case rep.PlacementDisagreements > 0:
		return fmt.Errorf("%d of %d sampled keys double-owned after convergence", rep.PlacementDisagreements, rep.PlacementSamples)
	}
	return nil
}
