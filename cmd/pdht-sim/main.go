// pdht-sim runs one message-level simulation of the paper's scenario and
// prints measured message rates, hit rates and index sizes next to the
// analytical model's prediction.
//
// Usage:
//
//	pdht-sim -strategy partialTTL -peers 2000 -keys 4000 [flags]
package main

import (
	"flag"
	"fmt"
	"os"

	"pdht/internal/churn"
	"pdht/internal/model"
	"pdht/internal/sim"
	"pdht/internal/stats"
	"pdht/internal/workload"
)

func main() {
	base := sim.DefaultConfig()
	strategy := flag.String("strategy", "partialTTL", "noIndex | indexAll | partial | partialTTL | partialAdaptive | partialTopK")
	backend := flag.String("backend", "trie", "trie | ring")
	peers := flag.Int("peers", base.Peers, "total peers")
	keys := flag.Int("keys", base.Keys, "unique keys")
	stor := flag.Int("stor", base.Stor, "index storage per peer")
	repl := flag.Int("repl", base.Repl, "replication factor")
	alpha := flag.Float64("alpha", base.Alpha, "Zipf exponent")
	fQry := flag.Float64("fqry", base.FQry, "queries per peer per second")
	fUpd := flag.Float64("fupd", base.FUpd, "updates per key per second")
	env := flag.Float64("env", base.Env, "probe probability per routing entry per round")
	rounds := flag.Int("rounds", base.Rounds, "measured rounds")
	warmup := flag.Int("warmup", base.WarmupRounds, "warmup rounds (excluded from measurement)")
	keyTtl := flag.Int("keyttl", 0, "keyTtl in rounds (0 = derive 1/fMin from the model)")
	selfTune := flag.Bool("selftune", false, "self-tune keyTtl online instead of using the model")
	meanOn := flag.Float64("churn-online", 0, "mean online session length in rounds (0 = no churn)")
	meanOff := flag.Float64("churn-offline", 0, "mean offline time in rounds")
	shift := flag.Int("shift", 0, "round at which to shuffle the query distribution (0 = never)")
	trace := flag.Int("trace", 0, "emit a time-series sample every N rounds (0 = off)")
	topkK := flag.Int("topk-k", base.TopKK, "partialTopK: results per query")
	topkTerms := flag.Int("topk-terms", base.TopKTerms, "partialTopK: terms per query")
	topkGroups := flag.Int("topk-groups", base.TopKGroups, "partialTopK: term-group universe size")
	topkGroupSize := flag.Int("topk-group-size", base.TopKGroupSize, "partialTopK: terms per group")
	topkCopies := flag.Int("topk-copies", base.TopKCopies, "partialTopK: copy documents per group")
	topkUniform := flag.Bool("topk-uniform", false, "partialTopK: full-fan-out baseline instead of the adaptive planner")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	cfg := base
	cfg.Peers, cfg.Keys, cfg.Stor, cfg.Repl = *peers, *keys, *stor, *repl
	cfg.Alpha, cfg.FQry, cfg.FUpd, cfg.Env = *alpha, *fQry, *fUpd, *env
	cfg.Rounds, cfg.WarmupRounds = *rounds, *warmup
	cfg.KeyTtl, cfg.SelfTuneTTL = *keyTtl, *selfTune
	cfg.TraceEvery = *trace
	cfg.TopKK, cfg.TopKTerms, cfg.TopKGroups = *topkK, *topkTerms, *topkGroups
	cfg.TopKGroupSize, cfg.TopKCopies, cfg.TopKUniform = *topkGroupSize, *topkCopies, *topkUniform
	cfg.Seed = *seed
	if *meanOn > 0 {
		cfg.Churn = churn.Model{MeanOnline: *meanOn, MeanOffline: *meanOff}
	}
	if *shift > 0 {
		cfg.Shifts = workload.Schedule{{Round: *shift, Kind: workload.ShiftShuffle}}
	}

	var err error
	if cfg.Strategy, err = sim.ParseStrategy(*strategy); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if cfg.Backend, err = sim.ParseBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("strategy    %s over %s DHT\n", cfg.Strategy, cfg.Backend)
	fmt.Printf("network     %d peers, %d keys, repl %d, fQry %s\n",
		cfg.Peers, cfg.Keys, cfg.Repl, model.FormatFrequency(cfg.FQry))
	if res.ActivePeers > 0 {
		fmt.Printf("DHT         %d active peers, keyTtl %d rounds\n", res.ActivePeers, res.KeyTtlUsed)
	}
	if res.ModelMsgPerRound > 0 {
		fmt.Printf("measured    %.1f msg/round (model predicts %.1f, ratio %.2f)\n",
			res.MsgPerRound, res.ModelMsgPerRound, res.MsgPerRound/res.ModelMsgPerRound)
	} else {
		fmt.Printf("measured    %.1f msg/round\n", res.MsgPerRound)
	}
	fmt.Printf("queries     %d answered of %d, hit rate %.3f\n",
		res.Answered, res.Queries, res.HitRate)
	if cfg.Strategy == sim.StrategyPartialTopK && res.Queries > 0 {
		fmt.Printf("top-k       %.1f wire legs/query, %.0f%% terminated early\n",
			res.TopKLegsPerQuery, 100*res.TopKEarlyRate)
	}
	if res.MeanIndexedKeys > 0 {
		fmt.Printf("index       %.0f keys live on average (%.1f%% of key space)\n",
			res.MeanIndexedKeys, 100*res.IndexFraction())
	}

	tb := stats.NewTable("message breakdown", "class", "msg/round")
	for _, c := range stats.Classes() {
		if res.ByClass[c] > 0 {
			tb.AddRow(c.String(), res.ByClass[c])
		}
	}
	fmt.Println()
	tb.Render(os.Stdout)

	if len(res.Trace) > 0 {
		tr := stats.NewTable("time series", "round", "hit rate", "indexed", "msg/round")
		for _, tp := range res.Trace {
			tr.AddRow(tp.Round, tp.HitRate, tp.IndexedKeys, tp.MsgPerRound)
		}
		fmt.Println()
		tr.Render(os.Stdout)
	}
}
