// pdht-bench regenerates every table and figure of the paper's evaluation,
// plus the validation and ablation experiments listed in DESIGN.md. It is
// the one command behind EXPERIMENTS.md.
//
// Usage:
//
//	pdht-bench                    # run everything
//	pdht-bench -experiment fig1   # one experiment
//	pdht-bench -scale 2000        # simulator population for V1/S2/A1/A3
//
// Experiments: table1 fig1 fig2 fig3 fig4 ttlsens alpha validate sweep
// adapt backends selftune topk store viewdelta chaos all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pdht/internal/experiments"
	"pdht/internal/model"
	"pdht/internal/sim"
	"pdht/internal/stats"
)

func main() {
	experiment := flag.String("experiment", "all", "experiment id (see doc comment)")
	scale := flag.Int("scale", 2000, "simulator population for the sim-backed experiments")
	seed := flag.Uint64("seed", 1, "random seed for the sim-backed experiments")
	format := flag.String("format", "table", "output format: table | csv | json")
	flag.Parse()
	if *format != "table" && *format != "csv" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown format %q (want table, csv or json)\n", *format)
		os.Exit(2)
	}

	p := model.DefaultScenario()
	simBase := simConfigFor(*scale, *seed)

	run := func(name string, fn func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	render := func(t *stats.Table) error {
		switch *format {
		case "csv":
			return t.RenderCSV(os.Stdout)
		case "json":
			// One JSON object per experiment table: the machine-readable
			// stream the benchmark-trajectory CI step records.
			return t.RenderJSON(os.Stdout)
		}
		t.Render(os.Stdout)
		return nil
	}

	run("table1", func() error { return render(experiments.Table1(p)) })
	run("fig1", func() error {
		t, _, err := experiments.Fig1(p)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("fig2", func() error {
		t, _, err := experiments.Fig2(p)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("fig3", func() error {
		t, _, err := experiments.Fig3(p)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("fig4", func() error {
		t, _, err := experiments.Fig4(p)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("ttlsens", func() error {
		t, _, err := experiments.TTLSens(p)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("alpha", func() error {
		t, err := experiments.AlphaSweep(p, nil)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("kary", func() error {
		t, err := experiments.KarySweep(p)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("maintenance", func() error {
		t, _, err := experiments.MaintenanceTradeoff(simBase, nil)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("validate", func() error {
		t, _, err := experiments.Validate(simBase)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("sweep", func() error {
		cfg := simBase
		cfg.Strategy = sim.StrategyPartialTTL
		t, _, err := experiments.SimSweep(cfg, nil)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("adapt", func() error {
		cfg := simBase
		cfg.Rounds = 600
		cfg.WarmupRounds = 100
		cfg.KeyTtl = 120
		cfg.TraceEvery = 50
		t, _, err := experiments.Adaptation(cfg, 400)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("backends", func() error {
		t, _, err := experiments.Backends(simBase)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("selftune", func() error {
		cfg := simBase
		cfg.Rounds = 500
		t, _, err := experiments.SelfTuning(cfg)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("calibrate", func() error {
		cfg := simBase
		cfg.Rounds = 600
		t, _, err := experiments.Calibration(cfg)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("topk", func() error {
		t, _, err := experiments.TopKAB(simBase)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("store", func() error {
		t, err := experiments.StoreBench(0)
		if err != nil {
			return err
		}
		return render(t)
	})
	run("viewdelta", func() error {
		t, err := experiments.ViewDeltaBench()
		if err != nil {
			return err
		}
		return render(t)
	})
	run("chaos", func() error {
		t, err := experiments.ChaosBench(0, *seed)
		if err != nil {
			return err
		}
		return render(t)
	})

	if *experiment != "all" && !knownExperiment(*experiment) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n",
			*experiment, strings.Join(knownExperiments, " "))
		os.Exit(2)
	}
}

var knownExperiments = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "ttlsens", "alpha", "kary",
	"maintenance", "validate", "sweep", "adapt", "backends", "selftune",
	"calibrate", "topk", "store", "viewdelta", "chaos", "all",
}

func knownExperiment(name string) bool {
	for _, k := range knownExperiments {
		if k == name {
			return true
		}
	}
	return false
}

// simConfigFor scales the Table 1 proportions to the given population:
// keys = 2·peers, repl = peers/100, matching the paper's
// 20,000 : 40,000 : 200 ratios.
func simConfigFor(peers int, seed uint64) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Peers = peers
	cfg.Keys = 2 * peers
	cfg.Repl = peers / 100
	if cfg.Repl < 2 {
		cfg.Repl = 2
	}
	cfg.Rounds = 300
	cfg.WarmupRounds = 60
	cfg.Seed = seed
	return cfg
}
